//===- exec/ProgramExecutor.cpp - Generic threaded plan execution ---------===//

#include "exec/ProgramExecutor.h"

#include "core/BalanceModel.h"
#include "exec/Affinity.h"
#include "exec/ExecObserver.h"
#include "exec/RegionSplit.h"
#include "fault/FaultInjector.h"
#include "support/Error.h"
#include "support/MathUtil.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

using namespace icores;

namespace {

using ProfileClock = std::chrono::steady_clock;

double secondsSince(ProfileClock::time_point Start,
                    ProfileClock::time_point End) {
  return std::chrono::duration<double>(End - Start).count();
}

// --- Work-stealing chunk deques ---------------------------------------
//
// One packed word per (island, thread): the open chunk-index range
// [begin, end) this thread still owns, begin in the high 32 bits. The
// owner claims the front (ascending chunk order keeps its streaming
// locality), thieves claim the back; both by CAS, so every chunk is
// claimed exactly once. No generation tag is needed: a pass's owner
// drains its own word to empty before entering the pass-end barrier, so
// a stale word observed by an early-arriving thief of the *next* pass
// always reads empty (begin == end), and the zero-initialized word is
// empty too. Chunk *data* is published by the pass-end barrier, not by
// the deque, so relaxed failure ordering is sufficient.

uint64_t packRange(uint32_t Begin, uint32_t End) {
  return (static_cast<uint64_t>(Begin) << 32) | End;
}
uint32_t rangeBegin(uint64_t Word) {
  return static_cast<uint32_t>(Word >> 32);
}
uint32_t rangeEnd(uint64_t Word) {
  return static_cast<uint32_t>(Word);
}

} // namespace

/// Island-private execution state: the field store (intermediates owned,
/// step inputs/outputs bound to the shared arrays) and the team barrier.
/// For temporal plans (TemporalDepth > 1) it additionally owns the
/// per-epoch import buffers (one per step input, wrap-gathered from the
/// shared arrays at every epoch start) and the scratch buffers
/// intermediate fused steps write instead of the shared outputs; feedback
/// pairs alternate between their import and scratch buffer from step to
/// step (see rebindForStep).
struct ProgramExecutor::IslandState {
  FieldStore Store;
  TeamBarrier Team;
  std::map<ArrayId, Array3D> Imports; ///< Keyed by step-input array.
  std::map<ArrayId, Array3D> Scratch; ///< Keyed by step-output array.
  /// Work-stealing chunk deques, one packed [begin, end) word per team
  /// thread (see packRange above); stealing never leaves the island.
  std::vector<std::atomic<uint64_t>> Deques;

  IslandState(unsigned NumArrays, int TeamSize, const ExecutorOptions &Opts)
      : Store(NumArrays),
        Team(TeamSize, Opts.BarrierPolicy, Opts.BarrierSpinLimit),
        Deques(static_cast<size_t>(TeamSize)) {}
};

namespace {

/// Shared state of one run() invocation.
struct RunControl {
  TeamBarrier GlobalBarrier;

  RunControl(int TotalThreads, const ExecutorOptions &Opts)
      : GlobalBarrier(TotalThreads, Opts.BarrierPolicy,
                      Opts.BarrierSpinLimit) {}
};

} // namespace

ProgramExecutor::ProgramExecutor(StencilProgram AProgram,
                                 KernelTable AKernels, const Domain &ADom,
                                 ExecutionPlan APlan, ExecutorOptions AOpts)
    : Program(std::move(AProgram)), Kernels(std::move(AKernels)), Dom(ADom),
      Plan(std::move(APlan)), Opts(AOpts) {
  ICORES_CHECK(Plan.GlobalTarget == Dom.coreBox(),
               "plan target does not match the domain");
  ICORES_CHECK(!Plan.Islands.empty(), "plan has no islands");
  ICORES_CHECK(Kernels.coversProgram(Program),
               "kernel table does not cover the program");
  ICORES_CHECK(Plan.TemporalDepth >= 1,
               "plan temporal depth must be at least 1");
  // Temporal blocking widens the fused-step cones beyond the domain and
  // evaluates them on periodically wrapped imports; that extended
  // evaluation is exact only under periodic boundaries.
  ICORES_CHECK(Plan.TemporalDepth == 1 ||
                   Dom.boundaryMode() == BoundaryMode::Periodic,
               "temporal blocking requires periodic boundaries");

  // Reductions: bindings in declaration order, the per-stage fold lists,
  // and the (island, step, reduction) partial scratch. The fold reads the
  // whole pass region on the team's thread 0, so in a multi-thread team
  // every non-empty pass producing a reduced array must keep its trailing
  // barrier — the same rule ScheduleCheck enforces and the barrier
  // elision optimizer preserves.
  Reductions = orderedReductionBindings(Program, Opts.Reductions);
  ReductionLog.resize(Reductions.size());
  StageFolds.resize(Program.numStages());
  for (size_t R = 0; R != Program.reductions().size(); ++R) {
    StageId Producer = Program.producerOf(Program.reductions()[R].Array);
    if (Producer != NoStage)
      StageFolds[static_cast<size_t>(Producer)].push_back(R);
  }
  Partials.resize(Plan.Islands.size() *
                  static_cast<size_t>(Plan.TemporalDepth) *
                  Reductions.size());
  if (!Reductions.empty())
    for (const IslandPlan &Island : Plan.Islands)
      for (const BlockTask &Block : Island.Blocks)
        for (const StagePass &Pass : Block.Passes)
          ICORES_CHECK(Island.NumThreads == 1 || Pass.Region.empty() ||
                           Pass.BarrierAfter ||
                           StageFolds[static_cast<size_t>(Pass.Stage)]
                               .empty(),
                       "pass producing a reduced array lacks its trailing "
                       "barrier (reduction fold would race)");

  // With a placement policy armed every allocation is left untouched so
  // the init epoch's pinned workers produce the first (page-homing) write;
  // None keeps the historical serial zero-fill.
  const bool Placing = Opts.Placement != PlacementPolicy::None;
  Box3 Alloc = Dom.allocBox();
  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    ArrayId Id = static_cast<ArrayId>(A);
    if (Program.array(Id).Role == ArrayRole::Intermediate)
      continue;
    if (Placing)
      External[Id].resetUntouched(Alloc, Opts.PadKRows);
    else
      External.emplace(Id, Array3D(Alloc, Opts.PadKRows));
  }

  for (const IslandPlan &Island : Plan.Islands) {
    auto IS = std::make_unique<IslandState>(Program.numArrays(),
                                            Island.NumThreads, Opts);
    for (auto &[Id, Arr] : External)
      IS->Store.bindExternal(Id, &Arr);

    // Allocate the island's private intermediates over the union of the
    // regions its passes compute each stage on.
    std::vector<Box3> StageUnion(Program.numStages());
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes) {
        Box3 &Un = StageUnion[static_cast<size_t>(Pass.Stage)];
        Un = Un.unionWith(Pass.Region);
      }
    for (unsigned S = 0; S != Program.numStages(); ++S) {
      if (StageUnion[S].empty())
        continue;
      for (ArrayId Out : Program.stage(static_cast<StageId>(S)).Outputs)
        if (Program.array(Out).Role == ArrayRole::Intermediate &&
            !IS->Store.isBound(Out)) {
          if (Placing)
            IS->Store.allocateOwnedUntouched(Out, StageUnion[S],
                                             Opts.PadKRows);
          else
            IS->Store.allocateOwned(Out, StageUnion[S], Opts.PadKRows);
        }
    }

    // Shared-traffic footprints from the actual pass regions: the union
    // each step-input array is read over, and the union each step-output
    // array is written over, across all of this island's passes.
    std::vector<Box3> ReadUnion(Program.numArrays());
    std::vector<Box3> WriteUnion(Program.numArrays());
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes) {
        const StageDef &Stage = Program.stage(Pass.Stage);
        for (const StageInput &In : Stage.Inputs)
          if (Program.array(In.Array).Role == ArrayRole::StepInput) {
            Box3 &Un = ReadUnion[static_cast<size_t>(In.Array)];
            Un = Un.unionWith(In.readRegion(Pass.Region));
          }
        for (ArrayId Out : Stage.Outputs)
          if (Program.array(Out).Role == ArrayRole::StepOutput) {
            Box3 &Un = WriteUnion[static_cast<size_t>(Out)];
            Un = Un.unionWith(Pass.Region);
          }
      }

    if (Plan.TemporalDepth > 1) {
      // Import and scratch buffers. A feedback pair alternates between
      // its Target's import buffer and its Source's scratch buffer from
      // fused step to fused step, so both must cover the pair's read and
      // write unions.
      std::vector<Box3> BufBox(Program.numArrays());
      for (ArrayId In : Program.stepInputs())
        BufBox[static_cast<size_t>(In)] =
            ReadUnion[static_cast<size_t>(In)];
      for (ArrayId Out : Program.stepOutputs())
        BufBox[static_cast<size_t>(Out)] =
            WriteUnion[static_cast<size_t>(Out)];
      for (const FeedbackPair &FB : Program.feedbacks()) {
        Box3 Paired = BufBox[static_cast<size_t>(FB.Target)].unionWith(
            BufBox[static_cast<size_t>(FB.Source)]);
        BufBox[static_cast<size_t>(FB.Target)] = Paired;
        BufBox[static_cast<size_t>(FB.Source)] = Paired;
      }
      for (ArrayId In : Program.stepInputs())
        if (!BufBox[static_cast<size_t>(In)].empty()) {
          if (Placing)
            IS->Imports[In].resetUntouched(BufBox[static_cast<size_t>(In)],
                                           Opts.PadKRows);
          else
            IS->Imports.emplace(
                In, Array3D(BufBox[static_cast<size_t>(In)], Opts.PadKRows));
        }
      for (ArrayId Out : Program.stepOutputs())
        if (!BufBox[static_cast<size_t>(Out)].empty()) {
          if (Placing)
            IS->Scratch[Out].resetUntouched(
                BufBox[static_cast<size_t>(Out)], Opts.PadKRows);
          else
            IS->Scratch.emplace(
                Out, Array3D(BufBox[static_cast<size_t>(Out)], Opts.PadKRows));
        }
      // Epoch import: every import buffer is gathered once from the
      // shared arrays.
      for (const auto &[Id, Buf] : IS->Imports)
        SharedReadBytesPerEpoch +=
            Buf.indexSpace().numPoints() * Program.array(Id).ElementBytes;
    } else {
      // T == 1: the island streams its input footprint from the shared
      // arrays every step.
      for (ArrayId In : Program.stepInputs())
        SharedReadBytesPerEpoch +=
            ReadUnion[static_cast<size_t>(In)].numPoints() *
            Program.array(In).ElementBytes;
    }
    // Final-step output writes go to the shared arrays in every mode.
    for (ArrayId Out : Program.stepOutputs()) {
      Box3 FinalOut;
      for (const BlockTask &Block : Island.Blocks) {
        if (Block.StepInEpoch != Plan.TemporalDepth - 1)
          continue;
        for (const StagePass &Pass : Block.Passes)
          if (Pass.Stage == Program.producerOf(Out))
            FinalOut = FinalOut.unionWith(Pass.Region);
      }
      SharedWriteBytesPerEpoch +=
          FinalOut.numPoints() * Program.array(Out).ElementBytes;
    }
    IslandStates.push_back(std::move(IS));
  }

  // Chaos site 0 is the run's global barrier; islands take 1..N.
  if (Opts.Chaos)
    for (size_t Isl = 0; Isl != IslandStates.size(); ++Isl)
      IslandStates[Isl]->Team.armChaos(Opts.Chaos, Isl + 1);

  for (size_t Isl = 0; Isl != Plan.Islands.size(); ++Isl)
    for (int T = 0; T != Plan.Islands[Isl].NumThreads; ++T)
      WorkerCoords.emplace_back(static_cast<int>(Isl), T);
  Pool = std::make_unique<WorkerPool>(static_cast<int>(WorkerCoords.size()));

  // Placement model: the page-ownership map under the requested policy and
  // the remote slice of the per-epoch shared traffic it implies. Computed
  // for every policy — None included — so profiled runs always report the
  // remote stream their placement causes.
  PMap = buildPlacementMap(Plan, Opts.Placement);
  for (const IslandPlan &Island : Plan.Islands)
    RemoteBytesPerEpoch +=
        estimateIslandRemoteEpochTraffic(Island, Plan, Program, PMap).total();

  if (Placing) {
    // Pin before the init epoch: first touch only homes pages on the right
    // socket when the touching thread already sits there, and the pool is
    // about to spawn for the epoch — setThreadPinning() afterwards would
    // be too late. Callers pass pinning through the options instead.
    if (!Opts.Pinning.empty())
      setThreadPinning(Opts.Pinning);
    if (Opts.HugePages) {
      for (auto &[Id, Arr] : External)
        Arr.adviseHugePages();
      for (const auto &IS : IslandStates) {
        for (auto &[Id, Buf] : IS->Imports)
          Buf.adviseHugePages();
        for (auto &[Id, Buf] : IS->Scratch)
          Buf.adviseHugePages();
      }
    }
    runPlacementEpoch();
    for (auto &[Id, Arr] : External)
      Arr.markPlaced();
  }

  Stats.initLayout(Plan, Program.numStages());
  Stats.Placement = placementPolicyName(Opts.Placement);
  Stats.PagesFirstTouched = PagesTouched;
  Stats.PinFailures = Pool->pinFailures();
  Stats.Stealing = Opts.Stealing;
  if (Opts.Machine)
    Stats.PredictedIslandSkew =
        predictedIslandSkew(Plan, Program, *Opts.Machine);
}

/// The placement init epoch: one pool dispatch in which every worker
/// zero-fills the storage its policy assigns it, producing the first
/// (page-homing) write of every allocation the constructor left untouched.
/// FirstTouch: each island's team covers its arena segment of the shared
/// arrays — split among the team threads in i/j like a kernel pass, so a
/// multi-socket island spreads its segment across its sockets — plus all
/// of its island-private buffers. The segments tile the allocation (see
/// PlacementMap), so afterwards every element is zero, exactly as the
/// serial constructor path leaves it. Interleave: the pages of every
/// allocation, shared and private alike, round-robin across all workers.
/// Either way the workers write pairwise-disjoint element ranges.
void ProgramExecutor::runPlacementEpoch() {
  const Box3 Alloc = Dom.allocBox();
  const int64_t PageBytes = placementPageBytes();
  const int TotalWorkers = static_cast<int>(WorkerCoords.size());
  std::vector<int64_t> BytesTouched(static_cast<size_t>(TotalWorkers), 0);

  // Zeroes the full (padded) k-rows of Sub's (i, j) rectangle: one
  // contiguous run per i-plane. Sub must span the array's whole k extent.
  auto zeroRows = [](Array3D &Arr, const Box3 &Sub) -> int64_t {
    if (Sub.empty())
      return 0;
    const int KLo = Arr.indexSpace().Lo[2];
    const int64_t RunElems =
        static_cast<int64_t>(Sub.Hi[1] - Sub.Lo[1]) * Arr.strideJ();
    for (int I = Sub.Lo[0]; I != Sub.Hi[0]; ++I)
      std::fill_n(Arr.pointerTo(I, Sub.Lo[1], KLo),
                  static_cast<size_t>(RunElems), 0.0);
    return static_cast<int64_t>(Sub.Hi[0] - Sub.Lo[0]) * RunElems *
           static_cast<int64_t>(sizeof(double));
  };
  // Zeroes this thread's 1/N linear slice of the physical buffer (private
  // island buffers have no inter-island partition to honour).
  auto zeroSlice = [](Array3D &Arr, int Thread, int Num) -> int64_t {
    const int64_t Elems =
        Arr.paddedBytes() / static_cast<int64_t>(sizeof(double));
    int64_t Lo = Elems * Thread / Num;
    int64_t Hi = Elems * (Thread + 1) / Num;
    if (Hi <= Lo)
      return 0;
    std::fill(Arr.data() + Lo, Arr.data() + Hi, 0.0);
    return (Hi - Lo) * static_cast<int64_t>(sizeof(double));
  };
  // Zeroes every TotalWorkers-th page of the buffer (page round-robin).
  auto zeroInterleaved = [&](Array3D &Arr, int Worker) -> int64_t {
    const int64_t Elems =
        Arr.paddedBytes() / static_cast<int64_t>(sizeof(double));
    const int64_t PageElems =
        std::max<int64_t>(1, PageBytes / static_cast<int64_t>(sizeof(double)));
    int64_t Bytes = 0;
    for (int64_t Page = Worker,
                 NumPages = (Elems + PageElems - 1) / PageElems;
         Page < NumPages; Page += TotalWorkers) {
      int64_t Lo = Page * PageElems;
      int64_t Hi = std::min(Elems, Lo + PageElems);
      std::fill(Arr.data() + Lo, Arr.data() + Hi, 0.0);
      Bytes += (Hi - Lo) * static_cast<int64_t>(sizeof(double));
    }
    return Bytes;
  };

  Pool->runOnAll([&](int Worker) {
    auto [Island, ThreadInTeam] = WorkerCoords[static_cast<size_t>(Worker)];
    const IslandPlan &IP = Plan.Islands[static_cast<size_t>(Island)];
    IslandState &IS = *IslandStates[static_cast<size_t>(Island)];
    int64_t Bytes = 0;

    // Visits the island state's private storage in deterministic order.
    auto forEachPrivate = [this](IslandState &State, auto &&Fn) {
      for (auto &[Id, Buf] : State.Imports)
        Fn(Buf);
      for (auto &[Id, Buf] : State.Scratch)
        Fn(Buf);
      for (unsigned A = 0; A != Program.numArrays(); ++A) {
        ArrayId Id = static_cast<ArrayId>(A);
        if (Program.array(Id).Role == ArrayRole::Intermediate &&
            State.Store.isBound(Id))
          Fn(State.Store.get(Id));
      }
    };

    if (Opts.Placement == PlacementPolicy::Interleave) {
      // Every worker touches its page residues of every allocation.
      for (auto &[Id, Arr] : External)
        Bytes += zeroInterleaved(Arr, Worker);
      for (const auto &State : IslandStates)
        forEachPrivate(*State, [&](Array3D &Buf) {
          Bytes += zeroInterleaved(Buf, Worker);
        });
    } else { // FirstTouch
      // Split the arena segment among the team in i/j only: collapse k
      // before splitting, then restore the full k span, so each thread
      // fills whole padded rows and no two threads share a row.
      Box3 Seg = PMap.arenaSegment(Island, Alloc);
      Box3 Flat = Seg;
      Flat.Lo[2] = 0;
      Flat.Hi[2] = Seg.empty() ? 0 : 1;
      Box3 Sub = teamSubRegion(Flat, ThreadInTeam, IP.NumThreads);
      if (!Sub.empty()) {
        Sub.Lo[2] = Seg.Lo[2];
        Sub.Hi[2] = Seg.Hi[2];
        for (auto &[Id, Arr] : External)
          Bytes += zeroRows(Arr, Sub);
      }
      forEachPrivate(IS, [&](Array3D &Buf) {
        Bytes += zeroSlice(Buf, ThreadInTeam, IP.NumThreads);
      });
    }
    BytesTouched[static_cast<size_t>(Worker)] = Bytes;
  });

  for (int64_t Bytes : BytesTouched)
    PagesTouched += (Bytes + PageBytes - 1) / PageBytes;
}

ProgramExecutor::~ProgramExecutor() = default;

Array3D &ProgramExecutor::array(ArrayId Id) {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

const Array3D &ProgramExecutor::array(ArrayId Id) const {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

void ProgramExecutor::prepareInputs() {
  for (ArrayId In : Program.stepInputs())
    Dom.fillHalo(array(In));
}

void ProgramExecutor::enableProfiling(bool On) {
  Profiling = On;
  Stats.Enabled = On;
}

int64_t ProgramExecutor::sharedBytesPerStep() const {
  return (SharedReadBytesPerEpoch + SharedWriteBytesPerEpoch) /
         Plan.TemporalDepth;
}

int64_t ProgramExecutor::remoteBytesPerStep() const {
  return RemoteBytesPerEpoch / Plan.TemporalDepth;
}

/// Points the island's feedback and output bindings at the storage fused
/// step \p StepInEpoch reads and writes: feedback pairs alternate between
/// the Target's import buffer (even steps) and the Source's scratch
/// buffer (odd steps); only the final fused step writes the shared output
/// arrays. Callers bracket this with team barriers.
void ProgramExecutor::rebindForStep(IslandState &IS, int StepInEpoch) {
  const bool Final = StepInEpoch == Plan.TemporalDepth - 1;
  if (StepInEpoch == 0)
    for (auto &[Id, Buf] : IS.Imports)
      IS.Store.rebindExternal(Id, &Buf);
  for (const FeedbackPair &FB : Program.feedbacks()) {
    auto ImportIt = IS.Imports.find(FB.Target);
    auto ScratchIt = IS.Scratch.find(FB.Source);
    if (ImportIt == IS.Imports.end() || ScratchIt == IS.Scratch.end())
      continue; // The island never touches this pair.
    Array3D *Import = &ImportIt->second;
    Array3D *Scratch = &ScratchIt->second;
    bool Even = StepInEpoch % 2 == 0;
    IS.Store.rebindExternal(FB.Target, Even ? Import : Scratch);
    IS.Store.rebindExternal(FB.Source, Final ? &array(FB.Source)
                                             : (Even ? Scratch : Import));
  }
  for (ArrayId Out : Program.stepOutputs()) {
    bool FedBack = false;
    for (const FeedbackPair &FB : Program.feedbacks())
      FedBack = FedBack || FB.Source == Out;
    if (FedBack)
      continue;
    auto It = IS.Scratch.find(Out);
    if (It == IS.Scratch.end())
      continue;
    IS.Store.rebindExternal(Out, Final ? &array(Out) : &It->second);
  }
}

/// Epoch import: fills this thread's share of every import buffer with
/// periodically wrapped copies of the shared arrays' core cells. The
/// widened cones only ever read wrapped *core* positions, so the shared
/// halos (stale after the epoch feedback swap) are never consulted.
void ProgramExecutor::importEpochInputs(IslandState &IS, int Worker,
                                        int ThreadInTeam, int NumThreads) {
  for (auto &[Id, Buf] : IS.Imports) {
    const Array3D &Src = array(Id);
    Box3 Sub = teamSubRegion(Buf.indexSpace(), ThreadInTeam, NumThreads);
    if (Opts.Observer && !Sub.empty())
      Opts.Observer->onImport(Worker, Src, Buf, Sub, Dom.ni(), Dom.nj(),
                              Dom.nk());
    for (int I = Sub.Lo[0]; I != Sub.Hi[0]; ++I) {
      int WI = Domain::wrapIndex(I, Dom.ni());
      for (int J = Sub.Lo[1]; J != Sub.Hi[1]; ++J) {
        int WJ = Domain::wrapIndex(J, Dom.nj());
        for (int K = Sub.Lo[2]; K != Sub.Hi[2]; ++K)
          Buf.at(I, J, K) = Src.at(WI, WJ, Domain::wrapIndex(K, Dom.nk()));
      }
    }
  }
}

double &ProgramExecutor::partialAt(size_t Island, int StepInEpoch,
                                   size_t R) {
  return Partials[(Island * static_cast<size_t>(Plan.TemporalDepth) +
                   static_cast<size_t>(StepInEpoch)) *
                      Reductions.size() +
                  R];
}

/// Seeds the island's per-epoch partials with the fold identities. Called
/// by the island's thread 0 right after the epoch-start global barriers,
/// before it reaches any pass-end barrier, so no fold can precede it.
void ProgramExecutor::resetIslandPartials(size_t Island) {
  for (int Step = 0; Step != Plan.TemporalDepth; ++Step)
    for (size_t R = 0; R != Reductions.size(); ++R)
      partialAt(Island, Step, R) = Reductions[R].Identity;
}

/// Folds \p Pass's region of each reduced array the pass produced into
/// the island's partial for the current fused step. Runs on the team's
/// thread 0 right after the pass-end barrier published every teammate's
/// sub-region; the store still holds the step's bindings (scratch buffers
/// at intermediate fused steps, the shared arrays at the final one).
/// Islands' widened cone regions overlap under temporal blocking, but the
/// overlapping cells carry bit-identical (periodically wrapped) values,
/// so the duplicate-tolerant combiner contract keeps the combined value
/// exactly the serial core scan's.
void ProgramExecutor::foldPassReduction(IslandState &IS, size_t Island,
                                        int StepInEpoch,
                                        const StagePass &Pass) {
  for (size_t R : StageFolds[static_cast<size_t>(Pass.Stage)]) {
    const Array3D &Arr = IS.Store.get(Program.reductions()[R].Array);
    const ReductionBinding &B = Reductions[R];
    double V = partialAt(Island, StepInEpoch, R);
    for (int I = Pass.Region.Lo[0]; I != Pass.Region.Hi[0]; ++I)
      for (int J = Pass.Region.Lo[1]; J != Pass.Region.Hi[1]; ++J)
        for (int K = Pass.Region.Lo[2]; K != Pass.Region.Hi[2]; ++K)
          V = B.Combine(V, Arr.at(I, J, K));
    partialAt(Island, StepInEpoch, R) = V;
  }
}

/// Combines the islands' partials of the epoch just finished, in island
/// order, and appends one global value per (fused step, reduction) to the
/// log. Runs with every worker quiesced at a global barrier (or after the
/// pool dispatch returned), so the partial reads need no further
/// synchronisation.
void ProgramExecutor::appendEpochReductions() {
  for (int Step = 0; Step != Plan.TemporalDepth; ++Step)
    for (size_t R = 0; R != Reductions.size(); ++R) {
      double V = Reductions[R].Identity;
      for (size_t Isl = 0; Isl != IslandStates.size(); ++Isl)
        V = Reductions[R].Combine(V, partialAt(Isl, Step, R));
      ReductionLog[R].push_back(V);
    }
}

const std::vector<double> &ProgramExecutor::reductionHistory(size_t R) const {
  ICORES_CHECK(R < ReductionLog.size(), "reduction index out of range");
  return ReductionLog[R];
}

void ProgramExecutor::setThreadPinning(
    const std::vector<ThreadPlacement> &Placements) {
  std::vector<int> Cores;
  Cores.reserve(Placements.size());
  for (const ThreadPlacement &P : Placements)
    Cores.push_back(P.GlobalCore);
  Pool->setPinning(std::move(Cores));
}

void ProgramExecutor::threadMain(int Worker, int Island, int ThreadInTeam,
                                 int Steps, void *ControlPtr) {
  RunControl &Control = *static_cast<RunControl *>(ControlPtr);
  const IslandPlan &IslandP =
      this->Plan.Islands[static_cast<size_t>(Island)];
  IslandState &IS = *IslandStates[static_cast<size_t>(Island)];

  const bool Prof = Profiling;
  ExecThreadAccum Accum(Prof ? Program.numStages() : 0,
                        static_cast<unsigned>(this->Plan.TemporalDepth));
  auto countWake = [&Accum](TeamBarrier::Wake W) {
    if (W == TeamBarrier::Wake::Sleep)
      ++Accum.SleepWakes;
    else
      ++Accum.SpinWakes;
  };

  // Observation hooks: arrive is reported before the real rendezvous and
  // depart after it, so an observer can merge happens-before clocks at
  // the exact points the hardware orders the workers.
  ExecObserver *const Obs = Opts.Observer;
  const uint64_t TeamSite = static_cast<uint64_t>(Island) + 1;
  auto globalBarrier = [&] {
    if (Obs)
      Obs->onBarrierArrive(/*Site=*/0, Worker,
                           static_cast<int>(WorkerCoords.size()));
    if (Prof) {
      ProfileClock::time_point T0 = ProfileClock::now();
      countWake(Control.GlobalBarrier.arriveAndWait(Worker));
      Accum.GlobalBarrierWaitSeconds +=
          secondsSince(T0, ProfileClock::now());
    } else {
      Control.GlobalBarrier.arriveAndWait(Worker);
    }
    if (Obs)
      Obs->onBarrierDepart(/*Site=*/0, Worker);
  };
  auto teamBarrier = [&] {
    if (Obs)
      Obs->onBarrierArrive(TeamSite, Worker, IslandP.NumThreads);
    countWake(IS.Team.arriveAndWait(ThreadInTeam));
    if (Obs)
      Obs->onBarrierDepart(TeamSite, Worker);
  };

  // Work-stealing scheduler state. A pass is steal-eligible only when it
  // is bracketed by real barriers on *both* sides: the preceding barrier
  // means no earlier pass of the barrier-free group is still in flight
  // (the barrier-elision proof of core/ScheduleOptimizer assumes the
  // static teamSubRegion split within a group), and the trailing barrier
  // publishes the stolen chunks' writes exactly as it publishes the
  // static split's. Chunk geometry is a pure function of the pass region
  // and the team size, so every thread derives the same chunks.
  const bool Steal = Opts.Stealing;
  const int StealChunks =
      IslandP.NumThreads * std::max(1, Opts.StealChunksPerThread);
  const int OwnChunks = StealChunks / IslandP.NumThreads;

  const int Depth = this->Plan.TemporalDepth;
  const int Epochs = Steps / Depth; // run() checked divisibility.
  for (int Epoch = 0; Epoch != Epochs; ++Epoch) {
    globalBarrier();
    if (Island == 0 && ThreadInTeam == 0) {
      if (Epoch != 0) {
        // Every worker is quiesced between the two global barriers, so
        // the previous epoch's reduction partials are complete — combine
        // them across islands before anyone resets them for this epoch.
        if (!Reductions.empty())
          appendEpochReductions();
        for (const FeedbackPair &FB : Program.feedbacks())
          std::swap(array(FB.Source), array(FB.Target));
      }
      // T == 1 reads the shared inputs in place, so the feedback halos
      // must be refreshed; temporal epochs instead wrap-gather imports
      // from the core cells and never read the shared halos.
      if (Depth == 1)
        for (const FeedbackPair &FB : Program.feedbacks())
          Dom.fillHalo(array(FB.Target));
    }
    globalBarrier();
    if (ThreadInTeam == 0 && !Reductions.empty())
      resetIslandPartials(static_cast<size_t>(Island));

    if (Depth > 1) {
      // Epoch prologue: rebind for fused step 0 and gather the imports.
      // Rebinding (thread 0) and importing (all threads) touch disjoint
      // state; the team barrier publishes both before any pass runs.
      if (ThreadInTeam == 0)
        rebindForStep(IS, 0);
      importEpochInputs(IS, Worker, ThreadInTeam, IslandP.NumThreads);
      teamBarrier();
    }

    int PassIndex = 0;
    int CurStep = 0;
    // True when a real barrier separates the previous pass (or the epoch
    // prologue) from the next one — the steal-eligibility precondition.
    bool PrevBarrier = true;
    for (const BlockTask &Block : IslandP.Blocks) {
      if (Depth > 1 && Block.StepInEpoch != CurStep) {
        // Structural fused-step boundary: quiesce the team, swap the
        // feedback bindings, and publish them before the next step.
        teamBarrier();
        CurStep = Block.StepInEpoch;
        if (ThreadInTeam == 0)
          rebindForStep(IS, CurStep);
        teamBarrier();
        PrevBarrier = true;
      }
      for (const StagePass &Pass : Block.Passes) {
        if (Opts.Chaos) {
          double Stall = Opts.Chaos->onWorkerPass(Island, ThreadInTeam,
                                                  Epoch, PassIndex);
          if (Stall > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(Stall));
        }
        ++PassIndex;
        const size_t Stage = static_cast<size_t>(Pass.Stage);
        if (Steal && PrevBarrier && Pass.BarrierAfter &&
            !Pass.Region.empty()) {
          // Work-stealing path: dice the pass region into StealChunks
          // chunks along the team split dimension, drain the own deque
          // front-first, then steal teammates' backs until a full sweep
          // claims nothing, and cross the pass-end barrier.
          const int Dim = teamSplitDim(Pass.Region);
          const int Extent = Pass.Region.extent(Dim);
          auto runChunk = [&](uint32_t C,
                             ProfileClock::time_point &LastWork) {
            Box3 Sub = Pass.Region;
            Sub.Lo[Dim] =
                Pass.Region.Lo[Dim] +
                static_cast<int>(chunkBegin(Extent, StealChunks, C));
            Sub.Hi[Dim] =
                Pass.Region.Lo[Dim] +
                static_cast<int>(chunkBegin(Extent, StealChunks, C + 1));
            if (Sub.empty())
              return;
            if (Obs)
              Obs->onPass(Worker, Program, IS.Store, Pass.Stage, Sub);
            if (Prof) {
              ProfileClock::time_point T0 = ProfileClock::now();
              Kernels.run(IS.Store, Pass.Stage, Sub);
              LastWork = ProfileClock::now();
              double Sec = secondsSince(T0, LastWork);
              Accum.StageKernelSeconds[Stage] += Sec;
              Accum.StepKernelSeconds[static_cast<size_t>(CurStep)] += Sec;
            } else {
              Kernels.run(IS.Store, Pass.Stage, Sub);
            }
          };

          ProfileClock::time_point LastWork;
          if (Prof)
            LastWork = ProfileClock::now();
          std::atomic<uint64_t> &Mine =
              IS.Deques[static_cast<size_t>(ThreadInTeam)];
          Mine.store(
              packRange(static_cast<uint32_t>(ThreadInTeam * OwnChunks),
                        static_cast<uint32_t>((ThreadInTeam + 1) *
                                              OwnChunks)),
              std::memory_order_release);
          uint64_t W = Mine.load(std::memory_order_relaxed);
          while (rangeBegin(W) < rangeEnd(W)) {
            if (Mine.compare_exchange_weak(
                    W, packRange(rangeBegin(W) + 1, rangeEnd(W)),
                    std::memory_order_acq_rel, std::memory_order_relaxed)) {
              runChunk(rangeBegin(W), LastWork);
              W = Mine.load(std::memory_order_relaxed);
            }
          }
          bool Claimed = IslandP.NumThreads > 1;
          while (Claimed) {
            Claimed = false;
            for (int Off = 1; Off != IslandP.NumThreads; ++Off) {
              std::atomic<uint64_t> &Victim =
                  IS.Deques[static_cast<size_t>(
                      (ThreadInTeam + Off) % IslandP.NumThreads)];
              uint64_t V = Victim.load(std::memory_order_acquire);
              while (rangeBegin(V) < rangeEnd(V)) {
                if (Victim.compare_exchange_weak(
                        V, packRange(rangeBegin(V), rangeEnd(V) - 1),
                        std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
                  ++Accum.Steals;
                  runChunk(rangeEnd(V) - 1, LastWork);
                  Claimed = true;
                  break;
                }
                ++Accum.StealFailures;
              }
            }
          }
          if (Prof) {
            ProfileClock::time_point T1 = ProfileClock::now();
            Accum.IdleSeconds += secondsSince(LastWork, T1);
            if (Obs)
              Obs->onBarrierArrive(TeamSite, Worker, IslandP.NumThreads);
            countWake(IS.Team.arriveAndWait(ThreadInTeam));
            Accum.StageBarrierWaitSeconds[Stage] +=
                secondsSince(T1, ProfileClock::now());
            if (Obs)
              Obs->onBarrierDepart(TeamSite, Worker);
            ++Accum.StagePasses[Stage];
          } else {
            teamBarrier();
          }
          if (ThreadInTeam == 0 && !StageFolds[Stage].empty())
            foldPassReduction(IS, static_cast<size_t>(Island), CurStep,
                              Pass);
          PrevBarrier = true;
          continue;
        }
        Box3 Sub =
            teamSubRegion(Pass.Region, ThreadInTeam, IslandP.NumThreads);
        if (Obs && !Sub.empty())
          Obs->onPass(Worker, Program, IS.Store, Pass.Stage, Sub);
        if (Prof) {
          ProfileClock::time_point T0 = ProfileClock::now();
          Kernels.run(IS.Store, Pass.Stage, Sub);
          ProfileClock::time_point T1 = ProfileClock::now();
          if (Pass.BarrierAfter) {
            if (Obs)
              Obs->onBarrierArrive(TeamSite, Worker, IslandP.NumThreads);
            countWake(IS.Team.arriveAndWait(ThreadInTeam));
            Accum.StageBarrierWaitSeconds[Stage] +=
                secondsSince(T1, ProfileClock::now());
            if (Obs)
              Obs->onBarrierDepart(TeamSite, Worker);
          } else {
            ++Accum.StageBarriersElided[Stage];
          }
          double Sec = secondsSince(T0, T1);
          Accum.StageKernelSeconds[Stage] += Sec;
          Accum.StepKernelSeconds[static_cast<size_t>(CurStep)] += Sec;
          ++Accum.StagePasses[Stage];
        } else {
          Kernels.run(IS.Store, Pass.Stage, Sub);
          if (Pass.BarrierAfter)
            teamBarrier();
        }
        // The pass-end barrier just published every teammate's sub-region
        // (single-thread teams need no barrier for that), so thread 0 can
        // fold the pass's share of any reduced array it produced.
        if (ThreadInTeam == 0 && !StageFolds[Stage].empty() &&
            (Pass.BarrierAfter || IslandP.NumThreads == 1))
          foldPassReduction(IS, static_cast<size_t>(Island), CurStep, Pass);
        PrevBarrier = Pass.BarrierAfter;
      }
    }
  }

  if (Prof) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats.mergeThread(Island, ThreadInTeam, Accum);
  }
}

void ProgramExecutor::run(int Steps) {
  ICORES_CHECK(Steps >= 0, "negative step count");
  ICORES_CHECK(Steps % Plan.TemporalDepth == 0,
               "step count must be a whole number of temporal epochs");
  if (Steps == 0)
    return;

  // Placement is established once, at construction; a reallocation after
  // the init epoch would silently hand the pages back to whichever thread
  // touches them next (see Array3D::placed()).
  if (Opts.Placement != PlacementPolicy::None)
    for (const auto &[Id, Arr] : External)
      ICORES_CHECK(Arr.placed(),
                   "shared array lost its NUMA placement (reallocated "
                   "after the init epoch)");

  RunControl Control(static_cast<int>(WorkerCoords.size()), Opts);
  if (Opts.Chaos)
    Control.GlobalBarrier.armChaos(Opts.Chaos, /*Site=*/0);
  ProfileClock::time_point Start;
  if (Profiling)
    Start = ProfileClock::now();
  Pool->runOnAll([&](int Worker) {
    auto [Island, ThreadInTeam] = WorkerCoords[static_cast<size_t>(Worker)];
    threadMain(Worker, Island, ThreadInTeam, Steps, &Control);
  });
  if (Profiling) {
    Stats.WallSeconds += secondsSince(Start, ProfileClock::now());
    Stats.StepsRun += Steps;
  }
  ++Stats.RunCalls;
  int64_t Epochs = Steps / Plan.TemporalDepth;
  Stats.SharedBytesRead += SharedReadBytesPerEpoch * Epochs;
  Stats.SharedBytesWritten += SharedWriteBytesPerEpoch * Epochs;
  Stats.RemoteBytesEst += RemoteBytesPerEpoch * Epochs;
  Stats.ThreadsSpawned = Pool->spawnedThreads();
  Stats.PoolDispatches = Pool->dispatches();
  Stats.PinFailures = Pool->pinFailures();
  if (Opts.Chaos) {
    FaultStats FS = Opts.Chaos->stats();
    Stats.FaultsInjected = FS.Injected;
    Stats.FaultRetries = FS.Retries;
    Stats.FaultTimeouts = FS.Timeouts;
    Stats.FaultsRecovered = FS.Recovered;
  }

  // The workers combined every epoch's reduction partials except the
  // final epoch's (there is no next epoch-start barrier); fold them now
  // that the pool dispatch has quiesced.
  if (!Reductions.empty())
    appendEpochReductions();

  // The last step left the results in the Source arrays; expose them
  // through the feedback Targets.
  for (const FeedbackPair &FB : Program.feedbacks())
    std::swap(array(FB.Source), array(FB.Target));
}
