//===- exec/ProgramExecutor.cpp - Generic threaded plan execution ---------===//

#include "exec/ProgramExecutor.h"

#include "exec/RegionSplit.h"
#include "support/Error.h"

#include <barrier>
#include <thread>
#include <utility>

using namespace icores;

/// Island-private execution state: the field store (intermediates owned,
/// step inputs/outputs bound to the shared arrays) and the team barrier.
struct ProgramExecutor::IslandState {
  FieldStore Store;
  std::barrier<> TeamBarrier;

  IslandState(unsigned NumArrays, int TeamSize)
      : Store(NumArrays), TeamBarrier(TeamSize) {}
};

namespace {

/// Shared state of one run() invocation.
struct RunControl {
  std::barrier<> GlobalBarrier;

  explicit RunControl(int TotalThreads) : GlobalBarrier(TotalThreads) {}
};

} // namespace

ProgramExecutor::ProgramExecutor(StencilProgram AProgram,
                                 KernelTable AKernels, const Domain &ADom,
                                 ExecutionPlan APlan)
    : Program(std::move(AProgram)), Kernels(std::move(AKernels)), Dom(ADom),
      Plan(std::move(APlan)) {
  ICORES_CHECK(Plan.GlobalTarget == Dom.coreBox(),
               "plan target does not match the domain");
  ICORES_CHECK(!Plan.Islands.empty(), "plan has no islands");
  ICORES_CHECK(Kernels.coversProgram(Program),
               "kernel table does not cover the program");

  Box3 Alloc = Dom.allocBox();
  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    ArrayId Id = static_cast<ArrayId>(A);
    if (Program.array(Id).Role != ArrayRole::Intermediate)
      External.emplace(Id, Array3D(Alloc));
  }

  for (const IslandPlan &Island : Plan.Islands) {
    auto IS = std::make_unique<IslandState>(Program.numArrays(),
                                            Island.NumThreads);
    for (auto &[Id, Arr] : External)
      IS->Store.bindExternal(Id, &Arr);

    // Allocate the island's private intermediates over the union of the
    // regions its passes compute each stage on.
    std::vector<Box3> StageUnion(Program.numStages());
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes) {
        Box3 &Un = StageUnion[static_cast<size_t>(Pass.Stage)];
        Un = Un.unionWith(Pass.Region);
      }
    for (unsigned S = 0; S != Program.numStages(); ++S) {
      if (StageUnion[S].empty())
        continue;
      for (ArrayId Out : Program.stage(static_cast<StageId>(S)).Outputs)
        if (Program.array(Out).Role == ArrayRole::Intermediate &&
            !IS->Store.isBound(Out))
          IS->Store.allocateOwned(Out, StageUnion[S]);
    }
    IslandStates.push_back(std::move(IS));
  }
}

ProgramExecutor::~ProgramExecutor() = default;

Array3D &ProgramExecutor::array(ArrayId Id) {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

const Array3D &ProgramExecutor::array(ArrayId Id) const {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

void ProgramExecutor::prepareInputs() {
  for (ArrayId In : Program.stepInputs())
    Dom.fillHalo(array(In));
}

void ProgramExecutor::threadMain(int Island, int ThreadInTeam, int Steps,
                                 void *ControlPtr) {
  RunControl &Control = *static_cast<RunControl *>(ControlPtr);
  const IslandPlan &IslandP =
      this->Plan.Islands[static_cast<size_t>(Island)];
  IslandState &IS = *IslandStates[static_cast<size_t>(Island)];

  for (int Step = 0; Step != Steps; ++Step) {
    Control.GlobalBarrier.arrive_and_wait();
    if (Island == 0 && ThreadInTeam == 0) {
      if (Step != 0)
        for (const FeedbackPair &FB : Program.feedbacks())
          std::swap(array(FB.Source), array(FB.Target));
      for (const FeedbackPair &FB : Program.feedbacks())
        Dom.fillHalo(array(FB.Target));
    }
    Control.GlobalBarrier.arrive_and_wait();

    for (const BlockTask &Block : IslandP.Blocks) {
      for (const StagePass &Pass : Block.Passes) {
        Box3 Sub =
            teamSubRegion(Pass.Region, ThreadInTeam, IslandP.NumThreads);
        Kernels.run(IS.Store, Pass.Stage, Sub);
        IS.TeamBarrier.arrive_and_wait();
      }
    }
  }
}

void ProgramExecutor::run(int Steps) {
  ICORES_CHECK(Steps >= 0, "negative step count");
  if (Steps == 0)
    return;

  int TotalThreads = 0;
  for (const IslandPlan &Island : Plan.Islands)
    TotalThreads += Island.NumThreads;

  RunControl Control(TotalThreads);
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(TotalThreads));
  for (size_t Isl = 0; Isl != Plan.Islands.size(); ++Isl)
    for (int T = 0; T != Plan.Islands[Isl].NumThreads; ++T)
      Threads.emplace_back(&ProgramExecutor::threadMain, this,
                           static_cast<int>(Isl), T, Steps, &Control);
  for (std::thread &Thr : Threads)
    Thr.join();

  // The last step left the results in the Source arrays; expose them
  // through the feedback Targets.
  for (const FeedbackPair &FB : Program.feedbacks())
    std::swap(array(FB.Source), array(FB.Target));
}
