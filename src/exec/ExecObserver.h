//===- exec/ExecObserver.h - Execution observation hooks -------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observer interface the threaded executor drives when
/// ExecutorOptions::Observer is set. The hooks expose exactly the events a
/// happens-before model needs: every barrier crossing (arrive before the
/// real rendezvous, depart after it), every pass a worker runs (with the
/// store resolved for the current fused step, so temporal rebinds are
/// visible as the actual Array3D instances touched), and every epoch
/// import gather. The shadow race detector (verify/ShadowStore.h) is the
/// canonical implementation; the executor itself has no verify dependency.
///
/// Hooks run on worker threads. Implementations must be thread-safe; the
/// executor guarantees that for one barrier site every participant's
/// arrive happens (in real time) before any participant's depart of that
/// crossing, which is what lets an implementation merge clocks at the
/// rendezvous.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_EXECOBSERVER_H
#define ICORES_EXEC_EXECOBSERVER_H

#include "grid/Array3D.h"
#include "grid/Box3.h"
#include "stencil/FieldStore.h"
#include "stencil/StencilIR.h"

#include <cstdint>

namespace icores {

/// Barrier-site keys the executor reports: site 0 is the run-global
/// barrier, site Island + 1 is that island's team barrier (the same
/// numbering the chaos subsystem uses).
class ExecObserver {
public:
  virtual ~ExecObserver() = default;

  /// Worker \p Worker is about to enter barrier \p Site, which
  /// \p Participants workers cross together.
  virtual void onBarrierArrive(uint64_t Site, int Worker,
                               int Participants) = 0;

  /// Worker \p Worker has been released from barrier \p Site.
  virtual void onBarrierDepart(uint64_t Site, int Worker) = 0;

  /// Worker \p Worker is about to run stage \p Stage of \p Program over
  /// \p Sub with array bindings \p Store (already rebound for the current
  /// fused step). \p Sub is never empty.
  virtual void onPass(int Worker, const StencilProgram &Program,
                      FieldStore &Store, StageId Stage, const Box3 &Sub) = 0;

  /// Worker \p Worker gathers \p Sub of import buffer \p Buf from the
  /// shared array \p Src, reading periodically wrapped core positions
  /// (wrap extents NI x NJ x NK).
  virtual void onImport(int Worker, const Array3D &Src, const Array3D &Buf,
                        const Box3 &Sub, int NI, int NJ, int NK) = 0;
};

} // namespace icores

#endif // ICORES_EXEC_EXECOBSERVER_H
