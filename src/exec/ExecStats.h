//===- exec/ExecStats.h - Executor observability layer ----------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measured counterpart of the sim/ cost model: ProgramExecutor can record
/// per-island, per-thread and per-stage kernel time, per-pass barrier-wait
/// time, step wall time and team imbalance while running a plan with real
/// threads. The paper's whole argument is about *where time goes* (barrier
/// waits sink the pure (3+1)D decomposition at large P; islands eliminate
/// them), so the executor must be able to answer that question directly
/// and let benches print predicted-vs-measured barrier shares.
///
/// Collection protocol: each worker thread accumulates into a private
/// ExecThreadAccum on its own stack (no shared cache lines on the hot
/// path) and merges it into the ExecStats under a mutex once per run().
/// With profiling disabled the executor takes no timestamps at all.
///
/// Since the barrier-elision optimizer (core/ScheduleOptimizer.h) landed,
/// the stats also count how many pass barriers were *not* crossed
/// (elided) and how remaining TeamBarrier waits were released (spin vs
/// futex sleep), so the synchronization win is directly observable.
///
/// Reporting: writeJson() emits the "icores.exec_stats.v5" schema
/// (documented in README.md; v3 added the chaos counters faults_injected /
/// retries / timeouts / recovered mirrored from the FaultInjector — all
/// zero on unarmed runs; v4 added the NUMA placement fields placement /
/// remote_bytes_est / pages_first_touched / pin_failures; v5 adds the
/// load-balance fields balance / stealing / steals / steal_failures /
/// idle_seconds / predicted_island_skew / measured_island_skew and the
/// per-island imbalance_per_step array); writeCsv() renders
/// per-(island, stage) rows through support/Table for
/// spreadsheet-friendly dumps. v2..v4 documents remain parseable by
/// bench/validate_bench_json.py.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_EXECSTATS_H
#define ICORES_EXEC_EXECSTATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace icores {

class OStream;
struct ExecutionPlan;

/// Time attributed to one stage's passes within one island (summed over
/// the team's threads; the barrier wait is the time spent in the team
/// barrier that follows each pass of the stage).
struct StageStat {
  double KernelSeconds = 0.0;
  double BarrierWaitSeconds = 0.0;
  int64_t Passes = 0; ///< Team-level pass executions (not x threads).
  int64_t BarriersElided = 0; ///< Team-level passes run without a barrier.
};

/// Totals for one thread of an island's team.
struct ThreadStat {
  int ThreadInTeam = 0;
  double KernelSeconds = 0.0;
  double BarrierWaitSeconds = 0.0; ///< Team barriers only.
  int64_t Passes = 0;              ///< Pass visits by this thread.
  int64_t BarrierWaits = 0;        ///< Team-barrier crossings.
  int64_t BarriersElided = 0;      ///< Passes this thread ran barrier-free.
  int64_t SpinWakes = 0;  ///< Barrier releases observed while spinning.
  int64_t SleepWakes = 0; ///< Barrier releases via the futex sleep path.
  int64_t Steals = 0;        ///< Chunks claimed from teammates' deques.
  int64_t StealFailures = 0; ///< Lost steal races (CAS retries).
  /// Out-of-work time: from the thread's last executed chunk to its entry
  /// into the pass barrier, summed over stealing-scheduled passes. The
  /// barrier wait itself is counted separately in BarrierWaitSeconds.
  double IdleSeconds = 0.0;
  /// Kernel seconds attributed to each fused step of the temporal epoch
  /// (index = BlockTask::StepInEpoch; size = plan TemporalDepth), summed
  /// over all epochs, so imbalance can be reported per step.
  std::vector<double> StepKernelSeconds;
};

/// Per-island aggregation: per-stage and per-thread views of the same
/// measurements.
struct IslandStat {
  int Island = 0;
  int NumThreads = 0;
  std::vector<StageStat> Stages; ///< Indexed by StageId.
  std::vector<ThreadStat> Threads;

  double kernelSeconds() const;
  double barrierWaitSeconds() const;
  int64_t teamPasses() const;

  /// Team imbalance: max over threads of kernel seconds divided by the
  /// mean. Pinned edge cases: a single-thread team and an island whose
  /// kernels recorded zero seconds are both defined as 1.0 — a team that
  /// cannot be unbalanced is trivially balanced, never 0 (which would
  /// read as "better than perfect" to ratio consumers).
  double imbalance() const;

  /// imbalance() restricted to fused step \p Step of the temporal epoch
  /// (0 <= Step < the plan's TemporalDepth), from the threads'
  /// StepKernelSeconds. Same pinned edge cases as imbalance().
  double imbalanceAtStep(int Step) const;
};

/// Per-thread accumulator for one run() call; lives on the worker's stack.
struct ExecThreadAccum {
  std::vector<double> StageKernelSeconds;
  std::vector<double> StageBarrierWaitSeconds;
  std::vector<int64_t> StagePasses;
  std::vector<int64_t> StageBarriersElided;
  std::vector<double> StepKernelSeconds; ///< By fused step in epoch.
  double GlobalBarrierWaitSeconds = 0.0;
  int64_t SpinWakes = 0;  ///< Team + global barrier spin releases.
  int64_t SleepWakes = 0; ///< Team + global barrier sleep releases.
  int64_t Steals = 0;        ///< Chunks claimed from teammates.
  int64_t StealFailures = 0; ///< Lost steal races.
  double IdleSeconds = 0.0;  ///< Out-of-work time before pass barriers.

  ExecThreadAccum(unsigned NumStages, unsigned TemporalDepth)
      : StageKernelSeconds(NumStages, 0.0),
        StageBarrierWaitSeconds(NumStages, 0.0), StagePasses(NumStages, 0),
        StageBarriersElided(NumStages, 0),
        StepKernelSeconds(NumStages == 0 ? 0 : TemporalDepth, 0.0) {}
};

/// Everything the executor measured, across all run() calls since the
/// last reset. Pool counters are filled in even when timing is disabled.
struct ExecStats {
  bool Enabled = false;
  int StepsRun = 0;
  /// The executed plan's fused steps per temporal epoch (1 = classic
  /// per-step execution); copied from the plan at initLayout().
  int TemporalDepth = 1;
  /// Logical bytes moved between the islands and the shared arrays over
  /// all run() calls: per-epoch import (or per-step input) reads and
  /// final-step output writes, scaled by the epochs run. Maintained even
  /// with timing disabled, like the pool counters.
  int64_t SharedBytesRead = 0;
  int64_t SharedBytesWritten = 0;
  int64_t RunCalls = 0;
  int64_t ThreadsSpawned = 0; ///< OS threads ever created by the pool.
  int64_t PoolDispatches = 0;
  double WallSeconds = 0.0; ///< Wall time inside run(), all calls.
  double GlobalBarrierWaitSeconds = 0.0; ///< Summed over all threads.

  // Chaos counters (schema v3), mirrored from the armed FaultInjector
  // after each run(); all zero when the executor runs unarmed.
  int64_t FaultsInjected = 0;
  int64_t FaultRetries = 0;
  int64_t FaultTimeouts = 0;
  int64_t FaultsRecovered = 0;

  // NUMA placement fields (schema v4). Placement is the policy the
  // executor enforced ("none" when it allocated serially); RemoteBytesEst
  // is the placement model's remote-DRAM byte estimate accumulated over
  // all run() calls (core/PlacementMap.h — the same function the
  // simulator projects with, so measured-vs-projected parity is exact);
  // PagesFirstTouched counts pages the init epoch's pinned workers
  // touched; PinFailures mirrors WorkerPool::pinFailures().
  std::string Placement = "none";
  int64_t RemoteBytesEst = 0;
  int64_t PagesFirstTouched = 0;
  int64_t PinFailures = 0;

  // Load-balance fields (schema v5). Balance names the plan's partition
  // sizing policy; Stealing says whether the work-stealing block scheduler
  // was armed; PredictedIslandSkew is core/BalanceModel.h's
  // predictedIslandSkew() for the executed plan — the SAME function the
  // simulator reports, so predicted-vs-predicted parity is exact by
  // construction (0.0 when the executor was given no machine model to
  // price with). The measured counterpart is measuredIslandSkew().
  std::string Balance = "uniform";
  bool Stealing = false;
  double PredictedIslandSkew = 0.0;

  std::vector<IslandStat> Islands;

  /// Sizes Islands/Stages/Threads to match \p Plan with \p NumStages
  /// stages and zeroes all accumulators (pool counters included).
  void initLayout(const ExecutionPlan &Plan, unsigned NumStages);

  /// Zeroes all measurements, keeping the layout and the pool counters.
  void resetMeasurements();

  /// Merges one thread's accumulator for one run() call.
  void mergeThread(int Island, int ThreadInTeam,
                   const ExecThreadAccum &Accum);

  double kernelSeconds() const;
  double teamBarrierWaitSeconds() const;

  /// Team-level pass barriers elided across all islands (schedule counts,
  /// not x threads), summed over all profiled steps.
  int64_t barriersElided() const;

  /// Barrier releases observed while spinning / after the futex sleep
  /// fallback, summed over all threads (team + global barriers).
  int64_t spinWakes() const;
  int64_t sleepWakes() const;

  /// Work-stealing totals over all threads: chunks claimed from
  /// teammates, lost steal races, and out-of-work seconds.
  int64_t steals() const;
  int64_t stealFailures() const;
  double idleSeconds() const;

  /// Measured island skew: max over islands of measured kernel seconds
  /// divided by the mean — the measured counterpart of
  /// PredictedIslandSkew. 1.0 for single-island plans and when no kernel
  /// time was recorded (the same pinned edges as IslandStat::imbalance).
  double measuredIslandSkew() const;

  /// Measured share of barrier time: (team + global barrier waits) over
  /// (kernel + all barrier waits). The analogue of the simulator's
  /// Barrier fraction of the per-step breakdown.
  double barrierShare() const;

  /// Emits the icores.exec_stats.v5 JSON document.
  void writeJson(OStream &OS) const;

  /// Emits per-(island, stage) rows as CSV via support/Table.
  void writeCsv(OStream &OS) const;

  std::string toJsonString() const;
};

} // namespace icores

#endif // ICORES_EXEC_EXECSTATS_H
