//===- exec/PlanExecutor.cpp - MPDATA-flavoured plan execution ------------===//

#include "exec/PlanExecutor.h"

#include "support/Error.h"

#include <utility>

using namespace icores;

PlanExecutor::PlanExecutor(const Domain &Dom, ExecutionPlan Plan,
                           KernelVariant Kernels, ExecutorOptions Opts)
    : M(buildMpdataProgram()),
      Exec(M.Program, buildMpdataKernels(Kernels), Dom, std::move(Plan),
           Opts) {
  // Density defaults to 1 so workloads that never touch it stay valid.
  Exec.array(M.H).fill(1.0);
}

Array3D &PlanExecutor::velocity(int Dim) {
  ICORES_CHECK(Dim >= 0 && Dim < 3, "velocity dimension out of range");
  return Exec.array(Dim == 0 ? M.U1 : (Dim == 1 ? M.U2 : M.U3));
}

double PlanExecutor::conservedMass() const {
  Box3 Core = Exec.domain().coreBox();
  const Array3D &State = Exec.array(M.XIn);
  const Array3D &Dens = Exec.array(M.H);
  double Mass = 0.0;
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        Mass += Dens.at(I, J, K) * State.at(I, J, K);
  return Mass;
}
