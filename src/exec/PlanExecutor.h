//===- exec/PlanExecutor.h - MPDATA-flavoured plan execution ----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PlanExecutor runs MPDATA ExecutionPlans with real threads: a thin,
/// domain-specific facade over the application-agnostic ProgramExecutor
/// (see exec/ProgramExecutor.h for the runtime semantics). Islands execute
/// concurrently with private intermediates (the paper's scenario 2 across
/// islands, scenario 1 inside); results are bit-identical to the serial
/// reference for every strategy, partitioning and team size.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_PLANEXECUTOR_H
#define ICORES_EXEC_PLANEXECUTOR_H

#include "core/ExecutionPlan.h"
#include "exec/ProgramExecutor.h"
#include "grid/Array3D.h"
#include "grid/Domain.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"

namespace icores {

/// Threaded executor for one MPDATA plan over one domain.
class PlanExecutor {
public:
  /// \p Plan must target Dom.coreBox(). Thread counts come from the plan;
  /// they may exceed the host's cores (oversubscription is fine for
  /// validation runs). Both kernel variants give bit-identical results,
  /// as does every ExecutorOptions barrier setting.
  PlanExecutor(const Domain &Dom, ExecutionPlan Plan,
               KernelVariant Kernels = KernelVariant::Reference,
               ExecutorOptions Opts = {});

  const Domain &domain() const { return Exec.domain(); }
  const MpdataProgram &program() const { return M; }
  const ExecutionPlan &plan() const { return Exec.plan(); }

  /// The underlying generic executor (e.g. for sharedBytesPerStep()).
  const ProgramExecutor &executor() const { return Exec; }

  /// Mutable access to the shared state/coefficient arrays for
  /// initialization (write core values, halos handled internally).
  Array3D &stateIn() { return Exec.array(M.XIn); }
  Array3D &velocity(int Dim);
  Array3D &density() { return Exec.array(M.H); }
  const Array3D &state() const { return Exec.array(M.XIn); }

  /// Refreshes the halos of the time-constant coefficient arrays.
  void prepareCoefficients() { Exec.prepareInputs(); }

  /// Profiling passthrough (see ProgramExecutor::enableProfiling).
  void enableProfiling(bool On) { Exec.enableProfiling(On); }
  const ExecStats &stats() const { return Exec.stats(); }
  void resetStats() { Exec.resetStats(); }

  /// Pinning passthrough (see ProgramExecutor::setThreadPinning).
  void setThreadPinning(const std::vector<ThreadPlacement> &Placements) {
    Exec.setThreadPinning(Placements);
  }

  /// Advances \p Steps time steps with the plan's threads.
  void run(int Steps) { Exec.run(Steps); }

  /// Deterministic serial sum of h * psi over the core (conserved).
  double conservedMass() const;

private:
  MpdataProgram M;
  ProgramExecutor Exec;
};

} // namespace icores

#endif // ICORES_EXEC_PLANEXECUTOR_H
