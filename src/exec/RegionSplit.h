//===- exec/RegionSplit.h - Thread work splitting ----------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a pass region among the threads of a work team along its longest
/// i/j dimension. The unit-stride k axis is only split as a last resort
/// (both i and j degenerate): cutting k would place adjacent threads on
/// the same cache lines and break the kernels' contiguous inner loops.
/// The simulator assumes the same policy when charging cross-socket halo
/// traffic.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_REGIONSPLIT_H
#define ICORES_EXEC_REGIONSPLIT_H

#include "grid/Box3.h"

namespace icores {

/// The dimension a team splits \p Region along: the longer of i and j
/// (ties go to i); the k axis only when both are degenerate (extent <= 1).
int teamSplitDim(const Box3 &Region);

/// Sub-region of \p Region assigned to thread \p Index of \p Count along
/// teamSplitDim(). May be empty when the extent is smaller than the team.
Box3 teamSubRegion(const Box3 &Region, int Index, int Count);

} // namespace icores

#endif // ICORES_EXEC_REGIONSPLIT_H
