//===- exec/WorkerPool.cpp - Persistent pinned worker threads -------------===//

#include "exec/WorkerPool.h"

#include "exec/Affinity.h"
#include "support/Error.h"

#include <cstdio>

using namespace icores;

WorkerPool::WorkerPool(int ANumThreads) : NumThreads(ANumThreads) {
  ICORES_CHECK(NumThreads >= 1, "worker pool needs at least one thread");
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void WorkerPool::setPinning(std::vector<int> GlobalCores) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Workers.empty())
    PinCores = std::move(GlobalCores);
}

void WorkerPool::ensureSpawned() {
  if (!Workers.empty())
    return;
  Workers.reserve(static_cast<size_t>(NumThreads));
  for (int T = 0; T != NumThreads; ++T)
    Workers.emplace_back(&WorkerPool::workerLoop, this, T);
  Spawned += NumThreads;
}

void WorkerPool::runOnAll(const std::function<void(int)> &AJob) {
  std::unique_lock<std::mutex> Lock(Mutex);
  ensureSpawned();
  Job = &AJob;
  Remaining = NumThreads;
  ++Generation;
  JobReady.notify_all();
  JobDone.wait(Lock, [this] { return Remaining == 0; });
  Job = nullptr;
  ++Dispatches;
}

void WorkerPool::workerLoop(int Index) {
  if (Index < static_cast<int>(PinCores.size())) {
    int Core = PinCores[static_cast<size_t>(Index)];
    if (!pinCurrentThreadToCore(Core)) {
      // Best effort, never fatal: count every rejection so ExecStats can
      // report it, but warn only once per pool to keep stderr readable.
      PinFailures.fetch_add(1, std::memory_order_relaxed);
      if (!PinWarned.exchange(true, std::memory_order_relaxed))
        std::fprintf(stderr,
                     "icores: warning: host rejected pinning worker %d to "
                     "core %d (sched_setaffinity); continuing unpinned\n",
                     Index, Core);
    }
  }

  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(int)> *MyJob;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      JobReady.wait(Lock, [&] {
        return Stopping || Generation != SeenGeneration;
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
      MyJob = Job;
    }
    (*MyJob)(Index);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Remaining == 0)
        JobDone.notify_all();
    }
  }
}
