//===- exec/ExecStats.cpp - Executor observability layer ------------------===//

#include "exec/ExecStats.h"

#include "core/ExecutionPlan.h"
#include "grid/Placement.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <algorithm>

using namespace icores;

double IslandStat::kernelSeconds() const {
  double Sum = 0.0;
  for (const ThreadStat &T : Threads)
    Sum += T.KernelSeconds;
  return Sum;
}

double IslandStat::barrierWaitSeconds() const {
  double Sum = 0.0;
  for (const ThreadStat &T : Threads)
    Sum += T.BarrierWaitSeconds;
  return Sum;
}

int64_t IslandStat::teamPasses() const {
  int64_t Sum = 0;
  for (const StageStat &S : Stages)
    Sum += S.Passes;
  return Sum;
}

double IslandStat::imbalance() const {
  // Pinned edges: single-thread teams and zero-kernel-time islands are
  // trivially balanced (1.0), never 0 — a ratio consumer comparing
  // against the ideal 1.0 must not see "better than perfect".
  if (Threads.size() < 2)
    return 1.0;
  double Max = 0.0, Sum = 0.0;
  for (const ThreadStat &T : Threads) {
    Max = std::max(Max, T.KernelSeconds);
    Sum += T.KernelSeconds;
  }
  double Mean = Sum / static_cast<double>(Threads.size());
  return Mean > 0.0 ? Max / Mean : 1.0;
}

double IslandStat::imbalanceAtStep(int Step) const {
  if (Threads.size() < 2)
    return 1.0;
  double Max = 0.0, Sum = 0.0;
  for (const ThreadStat &T : Threads) {
    double Seconds =
        Step >= 0 && static_cast<size_t>(Step) < T.StepKernelSeconds.size()
            ? T.StepKernelSeconds[static_cast<size_t>(Step)]
            : 0.0;
    Max = std::max(Max, Seconds);
    Sum += Seconds;
  }
  double Mean = Sum / static_cast<double>(Threads.size());
  return Mean > 0.0 ? Max / Mean : 1.0;
}

void ExecStats::initLayout(const ExecutionPlan &Plan, unsigned NumStages) {
  Islands.clear();
  Islands.resize(Plan.Islands.size());
  for (size_t I = 0; I != Plan.Islands.size(); ++I) {
    IslandStat &Stat = Islands[I];
    Stat.Island = static_cast<int>(I);
    Stat.NumThreads = Plan.Islands[I].NumThreads;
    Stat.Stages.assign(NumStages, StageStat());
    Stat.Threads.resize(static_cast<size_t>(Plan.Islands[I].NumThreads));
    for (int T = 0; T != Stat.NumThreads; ++T) {
      Stat.Threads[static_cast<size_t>(T)].ThreadInTeam = T;
      Stat.Threads[static_cast<size_t>(T)].StepKernelSeconds.assign(
          static_cast<size_t>(Plan.TemporalDepth), 0.0);
    }
  }
  StepsRun = 0;
  TemporalDepth = Plan.TemporalDepth;
  SharedBytesRead = 0;
  SharedBytesWritten = 0;
  RunCalls = 0;
  ThreadsSpawned = 0;
  PoolDispatches = 0;
  WallSeconds = 0.0;
  GlobalBarrierWaitSeconds = 0.0;
  FaultsInjected = 0;
  FaultRetries = 0;
  FaultTimeouts = 0;
  FaultsRecovered = 0;
  Placement = placementPolicyName(PlacementPolicy::None);
  RemoteBytesEst = 0;
  PagesFirstTouched = 0;
  PinFailures = 0;
  Balance = balancePolicyName(Plan.Balance);
  Stealing = false;
  PredictedIslandSkew = 0.0;
}

void ExecStats::resetMeasurements() {
  StepsRun = 0;
  SharedBytesRead = 0;
  SharedBytesWritten = 0;
  WallSeconds = 0.0;
  GlobalBarrierWaitSeconds = 0.0;
  FaultsInjected = 0;
  FaultRetries = 0;
  FaultTimeouts = 0;
  FaultsRecovered = 0;
  RemoteBytesEst = 0;
  for (IslandStat &Island : Islands) {
    std::fill(Island.Stages.begin(), Island.Stages.end(), StageStat());
    for (ThreadStat &T : Island.Threads) {
      int Keep = T.ThreadInTeam;
      size_t Depth = T.StepKernelSeconds.size();
      T = ThreadStat();
      T.ThreadInTeam = Keep;
      T.StepKernelSeconds.assign(Depth, 0.0);
    }
  }
}

void ExecStats::mergeThread(int Island, int ThreadInTeam,
                            const ExecThreadAccum &Accum) {
  ICORES_CHECK(static_cast<size_t>(Island) < Islands.size(),
               "stats merge for an unknown island");
  IslandStat &IslandS = Islands[static_cast<size_t>(Island)];
  ICORES_CHECK(static_cast<size_t>(ThreadInTeam) < IslandS.Threads.size(),
               "stats merge for an unknown thread");
  ThreadStat &ThreadS = IslandS.Threads[static_cast<size_t>(ThreadInTeam)];

  for (size_t S = 0; S != Accum.StagePasses.size(); ++S) {
    StageStat &Stage = IslandS.Stages[S];
    Stage.KernelSeconds += Accum.StageKernelSeconds[S];
    Stage.BarrierWaitSeconds += Accum.StageBarrierWaitSeconds[S];
    // Every team thread visits every pass; count the schedule once.
    if (ThreadInTeam == 0) {
      Stage.Passes += Accum.StagePasses[S];
      Stage.BarriersElided += Accum.StageBarriersElided[S];
    }

    ThreadS.KernelSeconds += Accum.StageKernelSeconds[S];
    ThreadS.BarrierWaitSeconds += Accum.StageBarrierWaitSeconds[S];
    ThreadS.Passes += Accum.StagePasses[S];
    ThreadS.BarrierWaits +=
        Accum.StagePasses[S] - Accum.StageBarriersElided[S];
    ThreadS.BarriersElided += Accum.StageBarriersElided[S];
  }
  ThreadS.SpinWakes += Accum.SpinWakes;
  ThreadS.SleepWakes += Accum.SleepWakes;
  ThreadS.Steals += Accum.Steals;
  ThreadS.StealFailures += Accum.StealFailures;
  ThreadS.IdleSeconds += Accum.IdleSeconds;
  size_t Steps =
      std::min(ThreadS.StepKernelSeconds.size(), Accum.StepKernelSeconds.size());
  for (size_t S = 0; S != Steps; ++S)
    ThreadS.StepKernelSeconds[S] += Accum.StepKernelSeconds[S];
  GlobalBarrierWaitSeconds += Accum.GlobalBarrierWaitSeconds;
}

double ExecStats::kernelSeconds() const {
  double Sum = 0.0;
  for (const IslandStat &Island : Islands)
    Sum += Island.kernelSeconds();
  return Sum;
}

double ExecStats::teamBarrierWaitSeconds() const {
  double Sum = 0.0;
  for (const IslandStat &Island : Islands)
    Sum += Island.barrierWaitSeconds();
  return Sum;
}

int64_t ExecStats::barriersElided() const {
  int64_t Sum = 0;
  for (const IslandStat &Island : Islands)
    for (const StageStat &Stage : Island.Stages)
      Sum += Stage.BarriersElided;
  return Sum;
}

int64_t ExecStats::spinWakes() const {
  int64_t Sum = 0;
  for (const IslandStat &Island : Islands)
    for (const ThreadStat &T : Island.Threads)
      Sum += T.SpinWakes;
  return Sum;
}

int64_t ExecStats::sleepWakes() const {
  int64_t Sum = 0;
  for (const IslandStat &Island : Islands)
    for (const ThreadStat &T : Island.Threads)
      Sum += T.SleepWakes;
  return Sum;
}

int64_t ExecStats::steals() const {
  int64_t Sum = 0;
  for (const IslandStat &Island : Islands)
    for (const ThreadStat &T : Island.Threads)
      Sum += T.Steals;
  return Sum;
}

int64_t ExecStats::stealFailures() const {
  int64_t Sum = 0;
  for (const IslandStat &Island : Islands)
    for (const ThreadStat &T : Island.Threads)
      Sum += T.StealFailures;
  return Sum;
}

double ExecStats::idleSeconds() const {
  double Sum = 0.0;
  for (const IslandStat &Island : Islands)
    for (const ThreadStat &T : Island.Threads)
      Sum += T.IdleSeconds;
  return Sum;
}

double ExecStats::measuredIslandSkew() const {
  if (Islands.size() < 2)
    return 1.0;
  double Max = 0.0, Sum = 0.0;
  for (const IslandStat &Island : Islands) {
    double Seconds = Island.kernelSeconds();
    Max = std::max(Max, Seconds);
    Sum += Seconds;
  }
  double Mean = Sum / static_cast<double>(Islands.size());
  return Mean > 0.0 ? Max / Mean : 1.0;
}

double ExecStats::barrierShare() const {
  double Kernel = kernelSeconds();
  double Barrier = teamBarrierWaitSeconds() + GlobalBarrierWaitSeconds;
  double Total = Kernel + Barrier;
  return Total > 0.0 ? Barrier / Total : 0.0;
}

namespace {

std::string jsonNumber(double Value) {
  return formatString("%.9g", Value);
}

} // namespace

void ExecStats::writeJson(OStream &OS) const {
  OS << "{\n";
  OS << "  \"schema\": \"icores.exec_stats.v5\",\n";
  OS << "  \"enabled\": " << Enabled << ",\n";
  OS << "  \"steps\": " << StepsRun << ",\n";
  OS << "  \"temporal_depth\": " << TemporalDepth << ",\n";
  OS << "  \"placement\": \"" << Placement << "\",\n";
  OS << "  \"remote_bytes_est\": " << RemoteBytesEst << ",\n";
  OS << "  \"pages_first_touched\": " << PagesFirstTouched << ",\n";
  OS << "  \"pin_failures\": " << PinFailures << ",\n";
  OS << "  \"balance\": \"" << Balance << "\",\n";
  OS << "  \"stealing\": " << Stealing << ",\n";
  OS << "  \"steals\": " << steals() << ",\n";
  OS << "  \"steal_failures\": " << stealFailures() << ",\n";
  OS << "  \"idle_seconds\": " << jsonNumber(idleSeconds()) << ",\n";
  OS << "  \"predicted_island_skew\": " << jsonNumber(PredictedIslandSkew)
     << ",\n";
  OS << "  \"measured_island_skew\": " << jsonNumber(measuredIslandSkew())
     << ",\n";
  OS << "  \"shared_read_bytes\": " << SharedBytesRead << ",\n";
  OS << "  \"shared_written_bytes\": " << SharedBytesWritten << ",\n";
  OS << "  \"run_calls\": " << RunCalls << ",\n";
  OS << "  \"pool\": {\"threads_spawned\": " << ThreadsSpawned
     << ", \"dispatches\": " << PoolDispatches << "},\n";
  OS << "  \"wall_seconds\": " << jsonNumber(WallSeconds) << ",\n";
  OS << "  \"step_wall_seconds\": "
     << jsonNumber(StepsRun > 0 ? WallSeconds / StepsRun : 0.0) << ",\n";
  OS << "  \"kernel_seconds\": " << jsonNumber(kernelSeconds()) << ",\n";
  OS << "  \"team_barrier_wait_seconds\": "
     << jsonNumber(teamBarrierWaitSeconds()) << ",\n";
  OS << "  \"global_barrier_wait_seconds\": "
     << jsonNumber(GlobalBarrierWaitSeconds) << ",\n";
  OS << "  \"barrier_share\": " << jsonNumber(barrierShare()) << ",\n";
  OS << "  \"elided_barriers\": " << barriersElided() << ",\n";
  OS << "  \"spin_wakes\": " << spinWakes() << ",\n";
  OS << "  \"sleep_wakes\": " << sleepWakes() << ",\n";
  OS << "  \"faults_injected\": " << FaultsInjected << ",\n";
  OS << "  \"retries\": " << FaultRetries << ",\n";
  OS << "  \"timeouts\": " << FaultTimeouts << ",\n";
  OS << "  \"recovered\": " << FaultsRecovered << ",\n";
  OS << "  \"islands\": [";
  for (size_t I = 0; I != Islands.size(); ++I) {
    const IslandStat &Island = Islands[I];
    OS << (I ? ",\n    {" : "\n    {");
    OS << "\"island\": " << Island.Island
       << ", \"num_threads\": " << Island.NumThreads
       << ", \"kernel_seconds\": " << jsonNumber(Island.kernelSeconds())
       << ", \"barrier_wait_seconds\": "
       << jsonNumber(Island.barrierWaitSeconds())
       << ", \"imbalance\": " << jsonNumber(Island.imbalance())
       << ", \"imbalance_per_step\": [";
    for (int Step = 0; Step != TemporalDepth; ++Step)
      OS << (Step ? ", " : "")
         << jsonNumber(Island.imbalanceAtStep(Step));
    OS << "],\n";
    OS << "     \"stages\": [";
    bool First = true;
    for (size_t S = 0; S != Island.Stages.size(); ++S) {
      const StageStat &Stage = Island.Stages[S];
      if (Stage.Passes == 0)
        continue;
      OS << (First ? "\n       " : ",\n       ");
      First = false;
      OS << "{\"stage\": " << static_cast<int>(S)
         << ", \"passes\": " << Stage.Passes
         << ", \"elided_barriers\": " << Stage.BarriersElided
         << ", \"kernel_seconds\": " << jsonNumber(Stage.KernelSeconds)
         << ", \"barrier_wait_seconds\": "
         << jsonNumber(Stage.BarrierWaitSeconds) << "}";
    }
    OS << (First ? "],\n" : "\n     ],\n");
    OS << "     \"threads\": [";
    for (size_t T = 0; T != Island.Threads.size(); ++T) {
      const ThreadStat &Thread = Island.Threads[T];
      OS << (T ? ",\n       " : "\n       ");
      OS << "{\"thread\": " << Thread.ThreadInTeam
         << ", \"passes\": " << Thread.Passes
         << ", \"barrier_waits\": " << Thread.BarrierWaits
         << ", \"elided_barriers\": " << Thread.BarriersElided
         << ", \"spin_wakes\": " << Thread.SpinWakes
         << ", \"sleep_wakes\": " << Thread.SleepWakes
         << ", \"steals\": " << Thread.Steals
         << ", \"steal_failures\": " << Thread.StealFailures
         << ", \"idle_seconds\": " << jsonNumber(Thread.IdleSeconds)
         << ", \"kernel_seconds\": " << jsonNumber(Thread.KernelSeconds)
         << ", \"barrier_wait_seconds\": "
         << jsonNumber(Thread.BarrierWaitSeconds) << "}";
    }
    OS << "\n     ]}";
  }
  OS << "\n  ]\n}\n";
}

void ExecStats::writeCsv(OStream &OS) const {
  TablePrinter Table({"island", "stage", "temporal_depth", "passes",
                      "elided_barriers", "kernel_seconds",
                      "barrier_wait_seconds"});
  for (const IslandStat &Island : Islands)
    for (size_t S = 0; S != Island.Stages.size(); ++S) {
      const StageStat &Stage = Island.Stages[S];
      if (Stage.Passes == 0)
        continue;
      Table.addRow({formatString("%d", Island.Island),
                    formatString("%d", static_cast<int>(S)),
                    formatString("%d", TemporalDepth),
                    formatString("%lld",
                                 static_cast<long long>(Stage.Passes)),
                    formatString("%lld",
                                 static_cast<long long>(Stage.BarriersElided)),
                    formatString("%.9g", Stage.KernelSeconds),
                    formatString("%.9g", Stage.BarrierWaitSeconds)});
    }
  Table.printCsv(OS);
}

std::string ExecStats::toJsonString() const {
  std::string Buffer;
  StringOStream OS(Buffer);
  writeJson(OS);
  return Buffer;
}
