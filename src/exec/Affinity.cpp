//===- exec/Affinity.cpp - Topology-aware thread placement ----------------===//

#include "exec/Affinity.h"

#include "support/Error.h"

#ifdef __linux__
#include <sched.h>
#include <unistd.h>
#endif

using namespace icores;

std::vector<ThreadPlacement>
icores::computeThreadPlacement(const ExecutionPlan &Plan,
                               const MachineModel &M) {
  std::vector<ThreadPlacement> Placement;
  // Next free core within each socket (sub-socket islands pack).
  std::vector<int> NextCore(static_cast<size_t>(M.NumSockets), 0);

  for (const IslandPlan &Island : Plan.Islands) {
    for (int T = 0; T != Island.NumThreads; ++T) {
      // Teams spanning several sockets stripe their threads across them
      // in contiguous runs of CoresPerSocket.
      int SocketOffset = T / M.CoresPerSocket;
      int Socket = Island.HomeSocket +
                   (SocketOffset < Island.NumSockets ? SocketOffset
                                                     : Island.NumSockets - 1);
      ICORES_CHECK(Socket < M.NumSockets, "placement beyond the machine");
      int Core = NextCore[static_cast<size_t>(Socket)]++;
      ICORES_CHECK(Core < M.CoresPerSocket,
                   "more threads than cores on a socket");
      ThreadPlacement P;
      P.Island = Island.Index;
      P.ThreadInTeam = T;
      P.Socket = Socket;
      P.GlobalCore = Socket * M.CoresPerSocket + Core;
      Placement.push_back(P);
    }
  }
  return Placement;
}

int icores::adjacencyCost(const ExecutionPlan &Plan, const MachineModel &M) {
  int Cost = 0;
  for (size_t I = 1; I < Plan.Islands.size(); ++I)
    Cost += M.topologyDistance(Plan.Islands[I - 1].HomeSocket,
                               Plan.Islands[I].HomeSocket);
  return Cost;
}

bool icores::pinCurrentThreadToCore(int GlobalCore) {
#ifdef __linux__
  long HostCores = sysconf(_SC_NPROCESSORS_ONLN);
  if (GlobalCore < 0 || HostCores <= 0 || GlobalCore >= HostCores)
    return false;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  CPU_SET(static_cast<unsigned>(GlobalCore), &Set);
  return sched_setaffinity(0, sizeof(Set), &Set) == 0;
#else
  (void)GlobalCore;
  return false;
#endif
}
