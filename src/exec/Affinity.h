//===- exec/Affinity.h - Topology-aware thread placement --------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's runtime "uses the OpenMP API only for creating threads and
/// controlling their affinity policy" and assigns "all the neighbour parts
/// ... to the adjacent processors that are closely connected each other
/// within the interconnect". This module computes that placement: every
/// plan thread is mapped to a concrete core of the machine model, islands
/// anchored on their home sockets so neighbouring domain parts sit one
/// NUMAlink hop apart. On Linux hosts the placement can optionally be
/// applied with sched_setaffinity (a no-op elsewhere or when the host has
/// fewer cores than the plan).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_AFFINITY_H
#define ICORES_EXEC_AFFINITY_H

#include "core/ExecutionPlan.h"
#include "machine/MachineModel.h"

#include <vector>

namespace icores {

/// Where one plan thread runs.
struct ThreadPlacement {
  int Island = 0;
  int ThreadInTeam = 0;
  int Socket = 0;
  int GlobalCore = 0; ///< Socket * CoresPerSocket + core-in-socket.
};

/// Maps every thread of \p Plan onto cores of \p Machine: island teams
/// occupy consecutive cores starting at their home socket; sub-socket
/// islands pack within the socket. Returned in (island, thread) order.
std::vector<ThreadPlacement> computeThreadPlacement(const ExecutionPlan &Plan,
                                                    const MachineModel &M);

/// Sum over pairs of domain-adjacent islands of the topology distance
/// between their sockets — the quantity the paper's placement minimizes
/// (neighbour parts on adjacent processors). Only meaningful for
/// islands-of-cores plans with 1D partitions.
int adjacencyCost(const ExecutionPlan &Plan, const MachineModel &M);

/// Pins the calling thread to \p GlobalCore if the host allows it.
/// Returns false (without failing) when unsupported or out of range.
bool pinCurrentThreadToCore(int GlobalCore);

} // namespace icores

#endif // ICORES_EXEC_AFFINITY_H
