//===- exec/TeamBarrier.cpp - Combining-tree hybrid barrier ---------------===//

#include "exec/TeamBarrier.h"

#include "fault/FaultInjector.h"
#include "support/Error.h"

#include <algorithm>
#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

using namespace icores;

namespace {

/// Polite spin-loop body: tells the core (and an SMT sibling) that the
/// thread is waiting, without giving up the time slice.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

int ceilDiv(int A, int B) { return (A + B - 1) / B; }

/// Total node count of an arity-Arity combining tree over \p NumThreads
/// leaves-of-threads: level 0 has ceil(N/Arity) nodes, each level above
/// combines Arity nodes, down to a single root.
int countNodes(int NumThreads, int Arity) {
  int Count = 0;
  int Level = ceilDiv(std::max(1, NumThreads), Arity);
  for (;;) {
    Count += Level;
    if (Level == 1)
      return Count;
    Level = ceilDiv(Level, Arity);
  }
}

} // namespace

TeamBarrier::TeamBarrier(int NumThreads, WaitPolicy Policy, int SpinLimit)
    : NumThreads(NumThreads), Policy(Policy),
      SpinLimit(std::max(0, SpinLimit)),
      Nodes(countNodes(NumThreads, Arity)) {
  ICORES_CHECK(NumThreads >= 1, "TeamBarrier needs at least one thread");
  // Wire up levels bottom-to-top. Level l node i combines arrivals from
  // its Arity children at level l-1 (threads, for l == 0) and reports to
  // node i/Arity of level l+1.
  int LevelBegin = 0;
  int LevelSize = ceilDiv(NumThreads, Arity);
  int ChildCount = NumThreads; // Threads feed level 0.
  for (;;) {
    for (int I = 0; I != LevelSize; ++I) {
      Node &Nd = Nodes[LevelBegin + I];
      Nd.Total = std::min(Arity, ChildCount - I * Arity);
      Nd.Pending.store(Nd.Total, std::memory_order_relaxed);
      Nd.Parent = LevelSize == 1 ? -1 : LevelBegin + LevelSize + I / Arity;
    }
    if (LevelSize == 1)
      break;
    LevelBegin += LevelSize;
    ChildCount = LevelSize;
    LevelSize = ceilDiv(LevelSize, Arity);
  }
}

void TeamBarrier::signal(int NodeIndex) {
  for (;;) {
    Node &Nd = Nodes[NodeIndex];
    // acq_rel: the decrements of one round form a release sequence, so
    // the last arriver's subsequent stores happen-after every earlier
    // arriver's writes — the chain extends node by node up to the root.
    if (Nd.Pending.fetch_sub(1, std::memory_order_acq_rel) != 1)
      return; // Not the last arriver here; someone else carries on up.
    // Reset before publishing: no thread can re-enter this node until it
    // observes the new epoch, which is published after this store.
    Nd.Pending.store(Nd.Total, std::memory_order_relaxed);
    if (Nd.Parent < 0) {
      // Root: release the team. seq_cst pairs with the waiters' Sleepers
      // registration (see arriveAndWait) so a notify is never skipped
      // while a waiter is committing to sleep.
      Epoch.fetch_add(1, std::memory_order_seq_cst);
      if (Policy != WaitPolicy::Spin &&
          Sleepers.load(std::memory_order_seq_cst) != 0)
        Epoch.notify_all();
      return;
    }
    NodeIndex = Nd.Parent;
  }
}

void TeamBarrier::armChaos(FaultInjector *Injector, uint64_t Site) {
  Chaos = Injector;
  ChaosSite = Site;
  Crossings.assign(static_cast<size_t>(NumThreads), 0);
}

TeamBarrier::Wake TeamBarrier::chaosWait(uint64_t Seen) {
  using Clock = std::chrono::steady_clock;
  const double TimeoutSec = Chaos->plan().StallTimeoutSeconds;
  const Clock::time_point Start = Clock::now();

  const int Spins = Policy == WaitPolicy::Block ? 0 : SpinLimit;
  for (int Spin = 0; Spin != Spins; ++Spin) {
    if (Epoch.load(std::memory_order_acquire) != Seen)
      return Wake::Spin;
    cpuRelax();
  }
  // Armed slow path (covers the Spin policy too): std::atomic::wait has
  // no timeout, so slice the wait into short sleeps and check elapsed
  // time against the plan's detection threshold. Exceeding it counts a
  // stalled-team timeout — once per crossing — but the wait itself goes
  // on: detection, not a deadline, so the run still completes bit-exactly.
  bool TimedOut = false;
  Wake How = Wake::Spin;
  while (Epoch.load(std::memory_order_acquire) == Seen) {
    How = Wake::Sleep;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    if (!TimedOut && TimeoutSec > 0 &&
        std::chrono::duration<double>(Clock::now() - Start).count() >
            TimeoutSec) {
      TimedOut = true;
      Chaos->countTimeout();
    }
  }
  return How;
}

TeamBarrier::Wake TeamBarrier::arriveAndWait(int Thread) {
  ICORES_CHECK(Thread >= 0 && Thread < NumThreads,
               "TeamBarrier thread index out of range");
  const uint64_t Seen = Epoch.load(std::memory_order_acquire);
  signal(Thread / Arity);

  if (Chaos) {
    // Forced spurious wakeup: notify the epoch word without advancing
    // it. Sleepers wake, observe the stale epoch, and must re-sleep —
    // exercising the sense-reversal re-check under load.
    const uint64_t Crossing = Crossings[static_cast<size_t>(Thread)]++;
    if (Chaos->onBarrierCrossing(ChaosSite, Thread, Crossing))
      Epoch.notify_all();
    return chaosWait(Seen);
  }

  const int Spins = Policy == WaitPolicy::Block ? 0 : SpinLimit;
  for (int Spin = 0; Spin != Spins; ++Spin) {
    if (Epoch.load(std::memory_order_acquire) != Seen)
      return Wake::Spin;
    cpuRelax();
  }
  if (Policy == WaitPolicy::Spin) {
    while (Epoch.load(std::memory_order_acquire) == Seen)
      cpuRelax();
    return Wake::Spin;
  }

  if (Epoch.load(std::memory_order_acquire) != Seen)
    return Wake::Spin;
  // Slow path. The seq_cst Sleepers increment before the epoch re-check
  // closes the lost-wakeup window against the root's seq_cst
  // epoch-publish-then-Sleepers-check: in any interleaving, either the
  // root sees our registration (and notifies) or we see the new epoch
  // (and never sleep).
  Sleepers.fetch_add(1, std::memory_order_seq_cst);
  while (Epoch.load(std::memory_order_seq_cst) == Seen)
    Epoch.wait(Seen, std::memory_order_seq_cst);
  Sleepers.fetch_sub(1, std::memory_order_relaxed);
  return Wake::Sleep;
}

const char *icores::waitPolicyName(TeamBarrier::WaitPolicy Policy) {
  switch (Policy) {
  case TeamBarrier::WaitPolicy::Spin:
    return "spin";
  case TeamBarrier::WaitPolicy::Hybrid:
    return "hybrid";
  case TeamBarrier::WaitPolicy::Block:
    return "block";
  }
  ICORES_UNREACHABLE("unknown wait policy");
}

bool icores::parseWaitPolicy(const std::string &Name,
                             TeamBarrier::WaitPolicy &Out) {
  if (Name == "spin")
    Out = TeamBarrier::WaitPolicy::Spin;
  else if (Name == "hybrid")
    Out = TeamBarrier::WaitPolicy::Hybrid;
  else if (Name == "block")
    Out = TeamBarrier::WaitPolicy::Block;
  else
    return false;
  return true;
}
