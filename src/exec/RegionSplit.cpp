//===- exec/RegionSplit.cpp - Thread work splitting ------------------------===//

#include "exec/RegionSplit.h"

#include "support/Error.h"
#include "support/MathUtil.h"

using namespace icores;

int icores::teamSplitDim(const Box3 &Region) {
  // Never split the unit-stride k axis (dimension 2) while an i/j
  // alternative exists: cutting k puts adjacent threads on the same cache
  // lines (false sharing) and breaks the kernels' contiguous inner loops.
  int Best = Region.extent(0) >= Region.extent(1) ? 0 : 1;
  if (Region.extent(Best) <= 1 && Region.extent(2) > 1)
    return 2;
  return Best;
}

Box3 icores::teamSubRegion(const Box3 &Region, int Index, int Count) {
  ICORES_CHECK(Count >= 1 && Index >= 0 && Index < Count,
               "bad team split request");
  if (Region.empty())
    return Box3();
  int Dim = teamSplitDim(Region);
  int Extent = Region.extent(Dim);
  // When the team outnumbers the cells, the surplus threads get empty
  // sub-regions.
  int Parts = Count <= Extent ? Count : Extent;
  if (Index >= Parts)
    return Box3();
  Box3 Sub = Region;
  Sub.Lo[Dim] = Region.Lo[Dim] + static_cast<int>(chunkBegin(Extent, Parts,
                                                             Index));
  Sub.Hi[Dim] = Region.Lo[Dim] + static_cast<int>(chunkBegin(Extent, Parts,
                                                             Index + 1));
  return Sub;
}
