//===- exec/LintSuite.h - Combined static-analysis driver -------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One entry point running every static analysis over a stencil
/// application: program validation (`program.*`), the kernel access audit
/// for each kernel variant (`access.*`), and per execution plan the
/// dataflow verifier (`plan.*`) and the schedule race check (`race.*`).
/// Shared by the `icores_lint` tool and `mpdata_cli --lint` so both report
/// identical findings.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_LINTSUITE_H
#define ICORES_EXEC_LINTSUITE_H

#include "core/ExecutionPlan.h"
#include "stencil/AccessAudit.h"
#include "stencil/StencilIR.h"

#include <string>
#include <vector>

namespace icores {

class DiagnosticEngine;
class KernelTable;

/// One kernel variant to audit (e.g. "ref" / "opt").
struct LintKernelSet {
  std::string Label;
  const KernelTable *Kernels = nullptr;
};

/// One named execution plan to verify and race-check.
struct LintPlanSet {
  std::string Label;
  const ExecutionPlan *Plan = nullptr;
};

struct LintSuiteOptions {
  /// Probe configuration for the access audit.
  AccessAuditOptions Audit;
  /// Skips the (comparatively slow) access audit when false.
  bool RunAccessAudit = true;
};

/// Runs the full analysis suite, accumulating findings in \p Diags.
/// Returns true when no error-severity finding was added. The program is
/// validated first; when validation fails, the kernel audit and plan
/// checks still run (their models tolerate invalid programs) so one run
/// reports everything.
bool runLintSuite(const StencilProgram &Program,
                  const std::vector<LintKernelSet> &KernelSets,
                  const std::vector<LintPlanSet> &Plans,
                  DiagnosticEngine &Diags,
                  const LintSuiteOptions &Opts = {});

} // namespace icores

#endif // ICORES_EXEC_LINTSUITE_H
