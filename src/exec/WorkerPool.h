//===- exec/WorkerPool.h - Persistent pinned worker threads -----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of persistent worker threads. ProgramExecutor::run()
/// used to spawn and join one std::thread per plan thread on every call,
/// so back-to-back runs (bench loops, multi-phase drivers) measured thread
/// creation instead of schedule quality. The pool spawns its workers once,
/// on the first dispatch, optionally pins each to a core, and reuses them
/// for every subsequent dispatch; spawnedThreads() exposes how many OS
/// threads were ever created so tests can assert the reuse.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_WORKERPOOL_H
#define ICORES_EXEC_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace icores {

/// Persistent team of \p NumThreads workers executing one job at a time.
class WorkerPool {
public:
  explicit WorkerPool(int NumThreads);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Runs \p Job(WorkerIndex) on every worker and blocks until all have
  /// finished. Workers are spawned on the first call and reused after.
  void runOnAll(const std::function<void(int)> &Job);

  int numThreads() const { return NumThreads; }

  /// Pins worker \p Index to \p GlobalCore when it spawns (best effort;
  /// silently ignored where unsupported). Must precede the first
  /// runOnAll(); later calls have no effect.
  void setPinning(std::vector<int> GlobalCores);

  /// OS threads created over the pool's lifetime; stays at numThreads()
  /// however many jobs ran — the observable pool-reuse guarantee.
  int64_t spawnedThreads() const { return Spawned; }

  /// Number of completed runOnAll() dispatches.
  int64_t dispatches() const { return Dispatches; }

  /// Workers whose sched_setaffinity request the host rejected. Pinning
  /// is best-effort and never fatal: the first failure prints a one-line
  /// warning to stderr, every failure is counted here, and the executor
  /// mirrors the count into ExecStats (pin_failures) so profiled runs
  /// record that their placement was not enforced.
  int64_t pinFailures() const {
    return PinFailures.load(std::memory_order_relaxed);
  }

private:
  void workerLoop(int Index);
  void ensureSpawned();

  const int NumThreads;
  std::vector<std::thread> Workers;
  std::vector<int> PinCores; ///< Empty, or one global core per worker.

  std::mutex Mutex;
  std::condition_variable JobReady;
  std::condition_variable JobDone;
  const std::function<void(int)> *Job = nullptr;
  uint64_t Generation = 0; ///< Bumped per dispatch; workers wait on it.
  int Remaining = 0;       ///< Workers still running the current job.
  bool Stopping = false;

  int64_t Spawned = 0;
  int64_t Dispatches = 0;
  std::atomic<int64_t> PinFailures{0};
  std::atomic<bool> PinWarned{false};
};

} // namespace icores

#endif // ICORES_EXEC_WORKERPOOL_H
