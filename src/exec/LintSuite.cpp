//===- exec/LintSuite.cpp - Combined static-analysis driver ---------------===//

#include "exec/LintSuite.h"

#include "core/PlanVerifier.h"
#include "exec/ScheduleCheck.h"
#include "stencil/KernelTable.h"
#include "support/Diagnostics.h"
#include "support/Format.h"

using namespace icores;

bool icores::runLintSuite(const StencilProgram &Program,
                          const std::vector<LintKernelSet> &KernelSets,
                          const std::vector<LintPlanSet> &Plans,
                          DiagnosticEngine &Diags,
                          const LintSuiteOptions &Opts) {
  size_t ErrorsBefore = Diags.numErrors();

  Program.validate(Diags);

  if (Opts.RunAccessAudit)
    for (const LintKernelSet &KS : KernelSets) {
      if (!KS.Kernels || !KS.Kernels->coversProgram(Program)) {
        Diags
            .report(Severity::Error, "access.kernels.incomplete",
                    formatString("kernel set '%s' does not provide a kernel "
                                 "for every program stage",
                                 KS.Label.c_str()))
            .note("variant", KS.Label);
        continue;
      }
      auditProgramAccess(Program, *KS.Kernels, Diags, Opts.Audit, KS.Label);
    }

  for (const LintPlanSet &PS : Plans) {
    if (!PS.Plan)
      continue;
    // Tag the findings each plan contributes with the plan's label so a
    // combined report stays attributable.
    size_t First = Diags.numFindings();
    verifyPlan(*PS.Plan, Program, Diags);
    checkPlanRaces(Program, *PS.Plan, Diags);
    for (size_t F = First; F != Diags.numFindings(); ++F)
      Diags.finding(F).note("plan", PS.Label);
  }

  // Temporal plans replay each epoch's schedule once per fused step, so
  // the same defect can be reported verbatim several times; keep one copy
  // per distinct id+context (the race ids carry a .step<k> suffix, so
  // per-step findings survive the dedupe as distinct).
  Diags.dedupe();

  return Diags.numErrors() == ErrorsBefore;
}
