//===- exec/ScheduleCheck.cpp - Plan schedule race analysis ---------------===//

#include "exec/ScheduleCheck.h"

#include "exec/RegionSplit.h"
#include "support/Diagnostics.h"
#include "support/Format.h"

#include <algorithm>

using namespace icores;

std::vector<IslandSchedule>
icores::buildIslandSchedules(const ExecutionPlan &Plan) {
  std::vector<IslandSchedule> Schedules;
  Schedules.reserve(Plan.Islands.size());
  for (const IslandPlan &Island : Plan.Islands) {
    IslandSchedule S;
    S.Index = Island.Index;
    S.NumThreads = std::max(1, Island.NumThreads);
    S.TemporalDepth = std::max(1, Plan.TemporalDepth);
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes) {
        // The executor rebinds the feedback buffers between fused steps
        // under a structural team barrier, so a fused-step boundary always
        // ends the running barrier-free epoch regardless of barrier bits.
        if (!S.Passes.empty() &&
            S.Passes.back().StepInEpoch != Block.StepInEpoch)
          S.Passes.back().BarrierAfter = true;
        if (Pass.Region.empty()) {
          // The executor skips the kernel of an empty pass but still
          // honours its barrier bit; fold that barrier onto the previous
          // retained pass so the epoch structure matches what runs. A
          // leading empty pass needs no folding: there is nothing before
          // it for its barrier to order.
          if (Pass.BarrierAfter && !S.Passes.empty())
            S.Passes.back().BarrierAfter = true;
          continue;
        }
        S.Passes.push_back({Pass.Stage, Pass.Region, Pass.BarrierAfter,
                            Block.StepInEpoch});
      }
    Schedules.push_back(std::move(S));
  }
  return Schedules;
}

namespace {

/// Per-array read hull of a stage (several StageInputs on the same array
/// merge into one box window).
struct ReadHull {
  ArrayId Array = 0;
  std::array<int, 3> MinOff = {0, 0, 0}, MaxOff = {0, 0, 0};
};

std::vector<ReadHull> readHulls(const StageDef &S) {
  std::vector<ReadHull> Hulls;
  for (const StageInput &In : S.Inputs) {
    ReadHull *Existing = nullptr;
    for (ReadHull &H : Hulls)
      if (H.Array == In.Array)
        Existing = &H;
    if (!Existing) {
      Hulls.push_back({In.Array, In.MinOff, In.MaxOff});
      continue;
    }
    for (int D = 0; D != 3; ++D) {
      Existing->MinOff[D] = std::min(Existing->MinOff[D], In.MinOff[D]);
      Existing->MaxOff[D] = std::max(Existing->MaxOff[D], In.MaxOff[D]);
    }
  }
  return Hulls;
}

Box3 expandByWindow(const Box3 &B, const std::array<int, 3> &MinOff,
                    const std::array<int, 3> &MaxOff) {
  Box3 R = B;
  for (int D = 0; D != 3; ++D) {
    R.Lo[D] += MinOff[D];
    R.Hi[D] += MaxOff[D];
  }
  return R;
}

bool overlaps(const Box3 &A, const Box3 &B) {
  return !A.intersect(B).empty();
}

bool writesArray(const StageDef &S, ArrayId A) {
  return std::find(S.Outputs.begin(), S.Outputs.end(), A) != S.Outputs.end();
}

} // namespace

bool icores::findPassPairConflict(const StencilProgram &Program,
                                  const ScheduledPass &Earlier,
                                  const ScheduledPass &Later, int NumThreads,
                                  PassConflict &Out) {
  const int N = std::max(1, NumThreads);
  if (N < 2 || Earlier.Region.empty() || Later.Region.empty())
    return false; // One thread runs its passes sequentially: no race.
  const StageDef &S1 = Program.stage(Earlier.Stage);
  const StageDef &S2 = Program.stage(Later.Stage);

  // Write-write: both passes write the same array and two different
  // threads' sub-regions overlap. Sub-regions are subsets of the pass
  // regions, so disjoint full regions rule the thread loop out cheaply.
  for (ArrayId Out1 : S1.Outputs) {
    if (!writesArray(S2, Out1) || !overlaps(Earlier.Region, Later.Region))
      continue;
    for (int T1 = 0; T1 != N; ++T1)
      for (int T2 = 0; T2 != N; ++T2) {
        if (T1 == T2)
          continue;
        Box3 W1 = teamSubRegion(Earlier.Region, T1, N);
        Box3 W2 = teamSubRegion(Later.Region, T2, N);
        if (!overlaps(W1, W2))
          continue;
        Out.ConflictKind = PassConflict::Kind::WriteWrite;
        Out.Array = Out1;
        Out.ThreadA = T1;
        Out.ThreadB = T2;
        Out.StageA = Earlier.Stage;
        Out.StageB = Later.Stage;
        Out.Overlap = W1.intersect(W2);
        return true;
      }
  }

  // Read-write, both directions: the earlier pass's writes vs the later
  // pass's window-expanded reads, and vice versa (a later write clobbering
  // cells an unfinished earlier pass still reads).
  for (int Dir = 0; Dir != 2; ++Dir) {
    const ScheduledPass &WP = Dir == 0 ? Earlier : Later;
    const ScheduledPass &RP = Dir == 0 ? Later : Earlier;
    const StageDef &WS = Dir == 0 ? S1 : S2;
    const StageDef &RS = Dir == 0 ? S2 : S1;
    for (const ReadHull &H : readHulls(RS)) {
      if (!writesArray(WS, H.Array))
        continue;
      if (!overlaps(WP.Region,
                    expandByWindow(RP.Region, H.MinOff, H.MaxOff)))
        continue;
      for (int T1 = 0; T1 != N; ++T1)
        for (int T2 = 0; T2 != N; ++T2) {
          if (T1 == T2)
            continue;
          Box3 W = teamSubRegion(WP.Region, T1, N);
          Box3 R = expandByWindow(teamSubRegion(RP.Region, T2, N), H.MinOff,
                                  H.MaxOff);
          if (!overlaps(W, R))
            continue;
          Out.ConflictKind = PassConflict::Kind::ReadWrite;
          Out.Array = H.Array;
          Out.ThreadA = T1;
          Out.ThreadB = T2;
          Out.StageA = WP.Stage;
          Out.StageB = RP.Stage;
          Out.Overlap = W.intersect(R);
          return true;
        }
    }
  }
  return false;
}

namespace {

/// Searches one epoch (passes [Begin, End) of \p S with no intervening
/// barrier) for conflicting thread pairs, reporting the first conflict of
/// each conflicting pass pair. A conflict needs two *different* threads:
/// one thread executes its share of every pass in order, so same-thread
/// overlap is sequential, not a race.
void checkEpoch(const StencilProgram &Program, const IslandSchedule &S,
                size_t Begin, size_t End, DiagnosticEngine &Diags) {
  for (size_t PI = Begin; PI != End; ++PI)
    for (size_t PJ = PI + 1; PJ != End; ++PJ) {
      PassConflict C;
      if (!findPassPairConflict(Program, S.Passes[PI], S.Passes[PJ],
                                S.NumThreads, C))
        continue;
      const std::string &NameA = Program.stage(C.StageA).Name;
      const std::string &NameB = Program.stage(C.StageB).Name;
      const std::string &ArrayName = Program.array(C.Array).Name;
      std::string Msg =
          C.ConflictKind == PassConflict::Kind::WriteWrite
              ? formatString("island %d: stages '%s' and '%s' both write "
                             "'%s' in overlapping thread sub-regions with "
                             "no barrier between the passes",
                             S.Index, NameA.c_str(), NameB.c_str(),
                             ArrayName.c_str())
              : formatString("island %d: stage '%s' writes '%s' while "
                             "stage '%s' reads it in an overlapping thread "
                             "sub-region with no barrier between the passes",
                             S.Index, NameA.c_str(), ArrayName.c_str(),
                             NameB.c_str());
      // Temporal plans replay each conflicting pass pair once per fused
      // step; encoding the epoch step keeps the id stable and distinct
      // per step (the same textual conflict at step 0 and step 3 are two
      // different findings, not duplicates).
      std::string Id = C.ConflictKind == PassConflict::Kind::WriteWrite
                           ? "race.intra.write-write"
                           : "race.intra.read-write";
      if (S.TemporalDepth > 1)
        Id += formatString(".step%d", S.Passes[PI].StepInEpoch);
      Finding &F = Diags.report(Severity::Error, Id, Msg);
      F.note("island", formatString("%d", S.Index))
          .note("array", ArrayName)
          .note("threads", formatString("%d,%d", C.ThreadA, C.ThreadB))
          .note("overlap", C.Overlap.str());
      if (S.TemporalDepth > 1)
        F.note("step", formatString("%d", S.Passes[PI].StepInEpoch));
    }
}

void checkIntraIsland(const StencilProgram &Program, const IslandSchedule &S,
                      DiagnosticEngine &Diags) {
  if (S.NumThreads < 2)
    return; // A one-thread team cannot race with itself.
  size_t Begin = 0;
  for (size_t P = 0; P != S.Passes.size(); ++P) {
    if (!S.Passes[P].BarrierAfter && P + 1 != S.Passes.size())
      continue;
    checkEpoch(Program, S, Begin, P + 1, Diags);
    Begin = P + 1;
  }

  // A declared reduction is an all-threads dependence the pass-pair
  // conflict query cannot see: the executor folds the whole pass region
  // of the reduced array's producer on the team's thread 0 right after
  // the pass, reading every teammate's sub-region. That read is ordered
  // only by the pass's own trailing barrier, so eliding it races even
  // when no later pass reads the array at all.
  for (size_t P = 0; P != S.Passes.size(); ++P) {
    const ScheduledPass &Pass = S.Passes[P];
    if (Pass.BarrierAfter || !Program.stageWritesReduced(Pass.Stage))
      continue;
    for (const ReductionDef &R : Program.reductions()) {
      if (!writesArray(Program.stage(Pass.Stage), R.Array))
        continue;
      std::string Id = "race.intra.reduction";
      if (S.TemporalDepth > 1)
        Id += formatString(".step%d", Pass.StepInEpoch);
      Finding &F = Diags.report(
          Severity::Error, Id,
          formatString("island %d: stage '%s' produces reduced array '%s' "
                       "(reduction '%s') but its pass has no trailing "
                       "barrier; the runtime's reduction fold reads the "
                       "whole pass region cross-thread",
                       S.Index, Program.stage(Pass.Stage).Name.c_str(),
                       Program.array(R.Array).Name.c_str(),
                       R.Name.c_str()));
      F.note("island", formatString("%d", S.Index))
          .note("array", Program.array(R.Array).Name)
          .note("reduction", R.Name);
      if (S.TemporalDepth > 1)
        F.note("step", formatString("%d", Pass.StepInEpoch));
    }
  }
}

/// Checks A's writes against B's accesses. Write-write conflicts are
/// symmetric, so they are only examined when \p CheckWriteWrite is set (the
/// caller passes true for one direction only); read-write conflicts are
/// directional and checked on every call.
void checkInterIsland(const StencilProgram &Program,
                      const IslandSchedule &A, const IslandSchedule &B,
                      bool CheckWriteWrite, DiagnosticEngine &Diags) {
  // Islands share only non-Intermediate arrays; intermediates live in
  // per-island field stores. Within one step there is no inter-island
  // synchronisation at all, so *any* write overlap on a shared array is a
  // race regardless of pass order. Whole pass regions are used: the team
  // covers its full region collectively.
  //
  // Temporal blocking narrows what is shared: with TemporalDepth > 1 every
  // island imports its step inputs into private buffers once per epoch and
  // runs intermediate fused steps entirely on private storage, so only the
  // *final* fused step's accesses to the step-output arrays reach shared
  // memory.
  const int Depth = std::max(1, std::max(A.TemporalDepth, B.TemporalDepth));
  auto sharedWrite = [&](ArrayId Id, const ScheduledPass &P) {
    if (Program.array(Id).Role == ArrayRole::Intermediate)
      return false;
    return Depth == 1 || P.StepInEpoch == Depth - 1;
  };
  auto sharedRead = [&](ArrayId Id, const ScheduledPass &P) {
    if (Program.array(Id).Role == ArrayRole::Intermediate)
      return false;
    if (Depth == 1)
      return true;
    // Step inputs are read from the island-private import buffers at every
    // fused step; a step-output array only binds shared storage while the
    // final fused step runs.
    return Program.producerOf(Id) != NoStage && P.StepInEpoch == Depth - 1;
  };
  auto reportOnce = [&](const char *Id, const std::string &Msg, ArrayId Arr,
                        const Box3 &Overlap) {
    Diags.report(Severity::Error, Id, Msg)
        .note("islands", formatString("%d,%d", A.Index, B.Index))
        .note("array", Program.array(Arr).Name)
        .note("overlap", Overlap.str());
  };

  for (const ScheduledPass &PA : A.Passes) {
    const StageDef &SA = Program.stage(PA.Stage);
    for (const ScheduledPass &PB : B.Passes) {
      const StageDef &SB = Program.stage(PB.Stage);

      for (ArrayId Out : SA.Outputs) {
        if (!sharedWrite(Out, PA))
          continue;
        if (CheckWriteWrite && writesArray(SB, Out) &&
            sharedWrite(Out, PB) && overlaps(PA.Region, PB.Region))
          reportOnce("race.inter.write-write",
                     formatString("islands %d and %d both write shared "
                                  "array '%s' in overlapping regions within "
                                  "one step (stages '%s' / '%s')",
                                  A.Index, B.Index,
                                  Program.array(Out).Name.c_str(),
                                  SA.Name.c_str(), SB.Name.c_str()),
                     Out, PA.Region.intersect(PB.Region));
        for (const ReadHull &H : readHulls(SB)) {
          if (H.Array != Out || !sharedRead(Out, PB))
            continue;
          Box3 R = expandByWindow(PB.Region, H.MinOff, H.MaxOff);
          if (overlaps(PA.Region, R))
            reportOnce("race.inter.read-write",
                       formatString("island %d writes shared array '%s' "
                                    "(stage '%s') while island %d reads it "
                                    "(stage '%s') with no synchronisation "
                                    "within the step",
                                    A.Index, Program.array(Out).Name.c_str(),
                                    SA.Name.c_str(), B.Index,
                                    SB.Name.c_str()),
                       Out, PA.Region.intersect(R));
        }
      }
    }
  }
}

} // namespace

bool icores::checkScheduleRaces(const StencilProgram &Program,
                                const std::vector<IslandSchedule> &Schedules,
                                DiagnosticEngine &Diags) {
  size_t ErrorsBefore = Diags.numErrors();
  for (const IslandSchedule &S : Schedules)
    checkIntraIsland(Program, S, Diags);
  for (size_t A = 0; A != Schedules.size(); ++A)
    for (size_t B = A + 1; B != Schedules.size(); ++B) {
      checkInterIsland(Program, Schedules[A], Schedules[B],
                       /*CheckWriteWrite=*/true, Diags);
      checkInterIsland(Program, Schedules[B], Schedules[A],
                       /*CheckWriteWrite=*/false, Diags);
    }
  return Diags.numErrors() == ErrorsBefore;
}

bool icores::checkPlanRaces(const StencilProgram &Program,
                            const ExecutionPlan &Plan,
                            DiagnosticEngine &Diags) {
  return checkScheduleRaces(Program, buildIslandSchedules(Plan), Diags);
}
