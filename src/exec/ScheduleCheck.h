//===- exec/ScheduleCheck.h - Plan schedule race analysis -------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Happens-before analysis over an ExecutionPlan's pass/barrier schedule.
/// The threaded executor runs each island's passes in order, splitting each
/// pass region among the team's threads with teamSubRegion() and placing a
/// team barrier after every pass; islands synchronise only at time-step
/// boundaries. This analysis model makes both rules explicit and checkable:
///
///  - *Intra-island*: within a maximal barrier-free run of passes (an
///    "epoch"), thread t1's writes may overlap thread t2's writes or
///    window-expanded reads of a later pass — a data race the barrier
///    normally prevents. buildIslandSchedules() mirrors the plan's
///    per-pass BarrierAfter bits, so plans transformed by the barrier
///    elision optimizer (core/ScheduleOptimizer.h) are checked exactly as
///    the executor will run them; this check is the optimizer's safety
///    gate.
///
///  - *Inter-island*: islands share only the non-Intermediate arrays (the
///    per-island FieldStore privatises intermediates). Two islands whose
///    passes write overlapping cells of a shared array, or where one writes
///    cells another reads, race for the whole time step.
///
/// Findings use the stable `race.*` id namespace (see DESIGN.md §7).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_SCHEDULECHECK_H
#define ICORES_EXEC_SCHEDULECHECK_H

#include "core/ExecutionPlan.h"
#include "grid/Box3.h"
#include "stencil/StencilIR.h"

#include <vector>

namespace icores {

class DiagnosticEngine;

/// One stage evaluation in an island's schedule, with the synchronisation
/// edge that follows it.
struct ScheduledPass {
  StageId Stage = 0;
  Box3 Region;
  /// Whether the team barriers after this pass. Stock plans always do;
  /// the barrier elision optimizer clears bits it can prove redundant.
  bool BarrierAfter = true;
  /// Which fused time step of the temporal epoch this pass belongs to
  /// (always 0 for TemporalDepth == 1 plans). The executor places a
  /// structural team barrier plus a feedback-buffer rebind at every
  /// fused-step boundary, so passes of different steps never share a
  /// barrier-free epoch.
  int StepInEpoch = 0;
};

/// The per-island view the race check operates on.
struct IslandSchedule {
  int Index = 0;
  int NumThreads = 1;
  /// Fused steps per epoch, copied from the plan. For Depth > 1 the
  /// executor privatises the step inputs (per-island import buffers) and
  /// only the final fused step's output passes touch the shared arrays,
  /// which relaxes the inter-island sharedness rules accordingly.
  int TemporalDepth = 1;
  std::vector<ScheduledPass> Passes;
};

/// Flattens \p Plan into per-island schedules mirroring the executor:
/// blocks in order, passes in order, empty pass regions dropped, barriers
/// taken from the plan's per-pass BarrierAfter bits. The executor still
/// honours the barrier bit of an empty (skipped) pass, so when an empty
/// pass carrying a barrier is dropped its barrier is folded onto the
/// previous retained pass — the schedule's epoch structure matches what
/// actually runs.
std::vector<IslandSchedule> buildIslandSchedules(const ExecutionPlan &Plan);

/// One provable cross-thread conflict between two passes of one island
/// executed with no intervening team barrier.
struct PassConflict {
  enum class Kind {
    WriteWrite, ///< Two threads' write sub-regions overlap.
    ReadWrite,  ///< One thread's writes overlap another's expanded reads.
  };
  Kind ConflictKind = Kind::WriteWrite;
  ArrayId Array = 0;
  /// The conflicting thread pair. WriteWrite: owners of the two write
  /// sub-regions, earlier pass first. ReadWrite: writer, then reader.
  int ThreadA = 0;
  int ThreadB = 0;
  /// The conflicting stages. WriteWrite: pass order. ReadWrite: the
  /// writing stage, then the reading stage (either pass may be the writer
  /// — a later write can clobber cells an unfinished earlier pass still
  /// reads).
  StageId StageA = 0;
  StageId StageB = 0;
  Box3 Overlap; ///< A witness cell region of the conflict.
};

/// Searches for a cross-thread conflict between \p Earlier and \p Later
/// assuming both run in one barrier-free epoch of a \p NumThreads team,
/// each pass split with teamSubRegion() and reads expanded by the stage
/// windows. Returns true and fills \p Out with the first conflict found
/// (write-write checked before read-write). This is the dependence query
/// shared by the race checker and the barrier elision optimizer: a barrier
/// separating two passes is redundant exactly when no pair of passes it
/// would order has such a conflict.
bool findPassPairConflict(const StencilProgram &Program,
                          const ScheduledPass &Earlier,
                          const ScheduledPass &Later, int NumThreads,
                          PassConflict &Out);

/// Runs the happens-before analysis over \p Schedules, reporting `race.*`
/// findings into \p Diags. Returns true when no error was added.
bool checkScheduleRaces(const StencilProgram &Program,
                        const std::vector<IslandSchedule> &Schedules,
                        DiagnosticEngine &Diags);

/// Convenience: buildIslandSchedules + checkScheduleRaces.
bool checkPlanRaces(const StencilProgram &Program, const ExecutionPlan &Plan,
                    DiagnosticEngine &Diags);

} // namespace icores

#endif // ICORES_EXEC_SCHEDULECHECK_H
