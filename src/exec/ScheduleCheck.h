//===- exec/ScheduleCheck.h - Plan schedule race analysis -------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Happens-before analysis over an ExecutionPlan's pass/barrier schedule.
/// The threaded executor runs each island's passes in order, splitting each
/// pass region among the team's threads with teamSubRegion() and placing a
/// team barrier after every pass; islands synchronise only at time-step
/// boundaries. This analysis model makes both rules explicit and checkable:
///
///  - *Intra-island*: within a maximal barrier-free run of passes (an
///    "epoch"), thread t1's writes may overlap thread t2's writes or
///    window-expanded reads of a later pass — a data race the barrier
///    normally prevents. The stock schedule built by buildIslandSchedules()
///    barriers after every pass (matching the executor), so intra-island
///    findings appear only for hand-modified schedules (e.g. a proposed
///    barrier-elision optimisation) — which is exactly when one wants the
///    check.
///
///  - *Inter-island*: islands share only the non-Intermediate arrays (the
///    per-island FieldStore privatises intermediates). Two islands whose
///    passes write overlapping cells of a shared array, or where one writes
///    cells another reads, race for the whole time step.
///
/// Findings use the stable `race.*` id namespace (see DESIGN.md §7).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_SCHEDULECHECK_H
#define ICORES_EXEC_SCHEDULECHECK_H

#include "core/ExecutionPlan.h"
#include "grid/Box3.h"
#include "stencil/StencilIR.h"

#include <vector>

namespace icores {

class DiagnosticEngine;

/// One stage evaluation in an island's schedule, with the synchronisation
/// edge that follows it.
struct ScheduledPass {
  StageId Stage = 0;
  Box3 Region;
  /// Whether the team barriers after this pass. The executor always does;
  /// tests and barrier-elision experiments clear it.
  bool BarrierAfter = true;
};

/// The per-island view the race check operates on.
struct IslandSchedule {
  int Index = 0;
  int NumThreads = 1;
  std::vector<ScheduledPass> Passes;
};

/// Flattens \p Plan into per-island schedules mirroring the executor:
/// blocks in order, passes in order, empty pass regions dropped, a barrier
/// after every pass.
std::vector<IslandSchedule> buildIslandSchedules(const ExecutionPlan &Plan);

/// Runs the happens-before analysis over \p Schedules, reporting `race.*`
/// findings into \p Diags. Returns true when no error was added.
bool checkScheduleRaces(const StencilProgram &Program,
                        const std::vector<IslandSchedule> &Schedules,
                        DiagnosticEngine &Diags);

/// Convenience: buildIslandSchedules + checkScheduleRaces.
bool checkPlanRaces(const StencilProgram &Program, const ExecutionPlan &Plan,
                    DiagnosticEngine &Diags);

} // namespace icores

#endif // ICORES_EXEC_SCHEDULECHECK_H
