//===- exec/TeamBarrier.h - Combining-tree hybrid barrier -------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sense-reversing combining-tree barrier tuned for the executor's pass
/// rendezvous. Threads decrement per-node arrival counters up an arity-4
/// tree of cache-line-aligned nodes (so at most Arity threads contend on
/// any one line, instead of all P*cores on a central counter), and the
/// last arriver at the root publishes a new epoch number that every waiter
/// observes with a plain acquire load — the "sense reversal": waiters
/// compare against the epoch they saw on entry, so the barrier is
/// immediately reusable with no reset phase visible to waiters.
///
/// Waiting is hybrid: a bounded spin of acquire loads (pass barriers are
/// usually hit within microseconds of each other when the region split is
/// balanced), then a fall back to std::atomic::wait — futex-backed on
/// Linux libstdc++ — so oversubscribed or imbalanced teams do not burn
/// cores. A Sleepers counter lets the epoch publisher skip the notify_all
/// syscall on the common all-spinners path. See DESIGN.md §8 for the
/// memory-ordering argument.
///
/// arriveAndWait() reports whether the caller was released while spinning
/// or had to sleep, feeding ExecStats' spin-vs-sleep counters.
///
/// Chaos hooks: armChaos() attaches a FaultInjector. An armed barrier
/// (a) forces deterministic spurious wakeups — the arriving thread
/// notifies the epoch word without advancing it, so sleepers wake, see
/// the stale epoch, and must go back to sleep (the sense-reversal
/// property under test) — and (b) detects stalled teams: a wait that
/// exceeds the plan's StallTimeoutSeconds is counted as a timeout
/// through the injector (feeding ExecStats v3) while the wait itself
/// continues, so the run still completes bit-exactly. Unarmed barriers
/// take the exact pre-chaos code path.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_TEAMBARRIER_H
#define ICORES_EXEC_TEAMBARRIER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace icores {

class FaultInjector;

/// Reusable rendezvous for a fixed-size thread team.
class TeamBarrier {
public:
  /// How a thread waits for the epoch to advance.
  enum class WaitPolicy {
    Spin,   ///< Spin forever; lowest latency, burns the core.
    Hybrid, ///< Bounded spin, then futex sleep (the default).
    Block,  ///< Sleep immediately; kindest to oversubscribed machines.
  };

  /// How a completed wait was released (for ExecStats accounting).
  enum class Wake {
    Spin,  ///< Released during the spin phase.
    Sleep, ///< Entered the sleep path before release.
  };

  static constexpr int DefaultSpinLimit = 4096;

  explicit TeamBarrier(int NumThreads,
                       WaitPolicy Policy = WaitPolicy::Hybrid,
                       int SpinLimit = DefaultSpinLimit);

  TeamBarrier(const TeamBarrier &) = delete;
  TeamBarrier &operator=(const TeamBarrier &) = delete;

  /// Blocks \p Thread (in [0, numThreads())) until all team threads have
  /// arrived. All memory effects of every thread before its arrival are
  /// visible to every thread after release. Reusable immediately.
  Wake arriveAndWait(int Thread);

  /// Arms the chaos hooks: spurious wakeups and stall-timeout detection
  /// are driven by \p Injector's plan, with \p Site identifying this
  /// barrier in fault traces. Must be called while no thread is waiting;
  /// pass nullptr to disarm.
  void armChaos(FaultInjector *Injector, uint64_t Site);

  int numThreads() const { return NumThreads; }
  WaitPolicy policy() const { return Policy; }

private:
  static constexpr int Arity = 4;

  /// One combining node: a line-exclusive arrival countdown.
  struct alignas(64) Node {
    std::atomic<int> Pending{0};
    int Total = 0;   ///< Children (threads or nodes) reporting here.
    int Parent = -1; ///< Node index, -1 at the root.
  };

  /// Propagates one arrival from \p NodeIndex toward the root; the last
  /// arriver at the root publishes the next epoch.
  void signal(int NodeIndex);

  /// The armed wait path: same release condition as the normal path, but
  /// the sleep is sliced so stall timeouts can be detected and counted.
  Wake chaosWait(uint64_t Seen);

  const int NumThreads;
  const WaitPolicy Policy;
  const int SpinLimit;
  std::vector<Node> Nodes; ///< Level 0 (leaves) first, root last.
  alignas(64) std::atomic<uint64_t> Epoch{0};
  alignas(64) std::atomic<int> Sleepers{0};

  // Chaos state; untouched (single null-check) when unarmed.
  FaultInjector *Chaos = nullptr;
  uint64_t ChaosSite = 0;
  std::vector<uint64_t> Crossings; ///< Per-thread crossing counters.
};

/// Name for reports ("spin", "hybrid", "block").
const char *waitPolicyName(TeamBarrier::WaitPolicy Policy);

/// Parses a policy name as accepted by `--barrier=`. Returns false (and
/// leaves \p Out alone) on an unknown name.
bool parseWaitPolicy(const std::string &Name, TeamBarrier::WaitPolicy &Out);

} // namespace icores

#endif // ICORES_EXEC_TEAMBARRIER_H
