//===- exec/ProgramExecutor.h - Generic threaded plan execution -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-agnostic threaded runtime: executes any ExecutionPlan
/// for any (StencilProgram, KernelTable) pair. Islands run concurrently
/// with private intermediates; passes are split among team threads along
/// their longest non-unit-stride dimension and followed by a team barrier
/// when the pass's BarrierAfter bit is set (the barrier-elision optimizer,
/// core/ScheduleOptimizer.h, clears redundant bits); the program's
/// feedback pairs advance the state between steps. Both the per-pass team
/// rendezvous and the step-boundary global rendezvous use the hybrid
/// combining-tree TeamBarrier, tunable through ExecutorOptions.
/// PlanExecutor (the MPDATA-flavoured API) is a thin wrapper over this
/// class.
///
/// The plan's threads live in a persistent WorkerPool: they are spawned
/// (and optionally pinned) once, on the first run(), and reused by every
/// later call, so bench loops time the schedule rather than thread
/// creation. With enableProfiling(true) the executor records per-stage
/// kernel time and per-pass barrier waits into an ExecStats (see
/// exec/ExecStats.h); results are bit-identical either way.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_PROGRAMEXECUTOR_H
#define ICORES_EXEC_PROGRAMEXECUTOR_H

#include "core/ExecutionPlan.h"
#include "core/PlacementMap.h"
#include "exec/Affinity.h"
#include "exec/ExecStats.h"
#include "exec/TeamBarrier.h"
#include "exec/WorkerPool.h"
#include "grid/Array3D.h"
#include "grid/Domain.h"
#include "stencil/FieldStore.h"
#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace icores {

class ExecObserver;
class FaultInjector;
struct MachineModel;

/// Runtime knobs for the executor's barriers. Results are bit-identical
/// for every setting; only latency/CPU-burn trade-offs change.
struct ExecutorOptions {
  TeamBarrier::WaitPolicy BarrierPolicy = TeamBarrier::WaitPolicy::Hybrid;
  int BarrierSpinLimit = TeamBarrier::DefaultSpinLimit;
  /// k-row pad multiple for every array the executor allocates (externals
  /// and per-island intermediates); rows start cache-line aligned at the
  /// default. 0 disables padding. Layout only — results are identical.
  int PadKRows = Array3D::VectorPadK;
  /// Chaos hook: when non-null, worker threads stall before passes and
  /// team/global barriers force spurious wakeups and detect stalled-team
  /// timeouts, all per the injector's seeded plan. Results stay
  /// bit-identical (faults here perturb timing, never data); injector
  /// counters are mirrored into ExecStats (schema v3).
  FaultInjector *Chaos = nullptr;
  /// Observation hook: when non-null, worker threads report every barrier
  /// crossing, pass, and epoch import (see exec/ExecObserver.h). The
  /// shadow race detector rides on this. Results are bit-identical; only
  /// timing changes.
  ExecObserver *Observer = nullptr;
  /// NUMA page placement for every array the executor allocates. None is
  /// the legacy behaviour: the constructing thread zero-fills serially,
  /// so all pages land on its node. FirstTouch and Interleave allocate
  /// untouched storage and run a placement init epoch on the worker pool
  /// before the constructor returns: FirstTouch has each island's team
  /// zero its arena segment (and its private buffers), Interleave spreads
  /// pages round-robin across all workers. Results are bit-identical for
  /// every policy; only page residency (and therefore bandwidth) changes.
  PlacementPolicy Placement = PlacementPolicy::None;
  /// Advise transparent huge pages (madvise(MADV_HUGEPAGE)) on the arenas
  /// between allocation and first touch. Best effort; Linux only.
  bool HugePages = false;
  /// Worker pinning applied *before* the placement init epoch, in the
  /// (island, thread) order of computeThreadPlacement() — first touch
  /// only places pages correctly when the touching thread already sits on
  /// its socket. With Placement == None, setThreadPinning() before the
  /// first run() remains equivalent.
  std::vector<ThreadPlacement> Pinning;
  /// Work-stealing block scheduler: within an island, passes that are
  /// bracketed by real barriers on both sides are diced into
  /// NumThreads * StealChunksPerThread chunks along the team split
  /// dimension; each thread drains its own chunk deque front-first
  /// (LIFO-local order preserves streaming locality) and then steals from
  /// teammates' backs. Stealing never crosses an island (sockets keep
  /// their NUMA locality), stolen chunks run under the same pass-end
  /// barrier, and barrier-elided pass groups keep the static split (the
  /// race-freedom proof of core/ScheduleCheck assumes it), so results are
  /// bit-identical with stealing on or off.
  bool Stealing = false;
  /// Chunks per team thread for the stealing scheduler (>= 1); more
  /// chunks balance finer at slightly higher claim overhead.
  int StealChunksPerThread = 4;
  /// Optional machine model used to price the executed plan's predicted
  /// island skew (core/BalanceModel.h) into ExecStats — the SAME function
  /// the simulator reports, so predicted-vs-predicted parity is exact.
  /// When null, ExecStats::PredictedIslandSkew stays 0.0.
  const MachineModel *Machine = nullptr;
  /// Combiners for the program's declared reductions (see ReductionBinding
  /// in stencil/StencilIR.h; workloads registered in the WorkloadRegistry
  /// carry them). Must cover every declared reduction — checked at
  /// construction. After each fused step, the team's thread 0 folds its
  /// island's share of each reduced array right after the producing pass's
  /// barrier; the per-island partials are combined in island order at the
  /// next global barrier, so every schedule yields values bit-identical to
  /// the serial stepper's canonical scan (the combiner contract makes the
  /// fold order and the islands' redundant cone overlap immaterial).
  std::vector<ReductionBinding> Reductions;
};

/// Threaded executor for one plan of one program over one domain.
///
/// Temporal blocking: a plan with TemporalDepth T > 1 is executed in
/// epochs of T fused time steps between global barriers. Each epoch every
/// island imports its step inputs once into island-private buffers
/// (periodically wrap-gathered from the shared core cells, so the widened
/// overlap cones are exact — periodic boundaries are required), runs the
/// T fused steps entirely on private storage with only team-level
/// synchronization, and writes the shared output arrays only from the
/// final fused step. Results are bit-identical to the T = 1 schedule.
class ProgramExecutor {
public:
  /// \p Plan must target Dom.coreBox(); \p Kernels must cover the program.
  ProgramExecutor(StencilProgram Program, KernelTable Kernels,
                  const Domain &Dom, ExecutionPlan Plan,
                  ExecutorOptions Opts = {});
  ~ProgramExecutor();

  const Domain &domain() const { return Dom; }
  const StencilProgram &program() const { return Program; }
  const ExecutionPlan &plan() const { return Plan; }

  /// Mutable access to any step-input or step-output array.
  Array3D &array(ArrayId Id);
  const Array3D &array(ArrayId Id) const;

  /// Refreshes the halos of every step input (call after initialization).
  void prepareInputs();

  /// Turns per-stage/per-pass timing collection on or off for subsequent
  /// run() calls. Off by default; when off, run() takes no timestamps.
  void enableProfiling(bool On);

  /// The measurements accumulated so far (pool counters are maintained
  /// even with profiling off).
  const ExecStats &stats() const { return Stats; }

  /// Zeroes the accumulated measurements (layout and pool kept).
  void resetStats() { Stats.resetMeasurements(); }

  /// Requests that worker I be pinned to Placements[I].GlobalCore (the
  /// (island, thread) order of computeThreadPlacement). Takes effect only
  /// if called before the first run(); best effort on the host. With a
  /// placement policy armed the pool already spun up for the init epoch —
  /// pass ExecutorOptions::Pinning instead so the touching threads are
  /// pinned before they touch.
  void setThreadPinning(const std::vector<ThreadPlacement> &Placements);

  /// Advances \p Steps steps with the plan's threads. Afterwards each
  /// feedback Target array holds the newest state. \p Steps must be a
  /// multiple of the plan's TemporalDepth (whole epochs only).
  void run(int Steps);

  /// Logical bytes this executor moves between an island and the shared
  /// arrays per *time step* (averaged over an epoch): for T == 1 every
  /// island streams its input footprint in and its output part out each
  /// step; for T > 1 one import plus one final write per epoch, divided
  /// by T. This is the measured side of the simulator's
  /// SharedBytesPerStep projection.
  int64_t sharedBytesPerStep() const;

  /// The placement model's remote-DRAM bytes per time step for this
  /// plan under the options' policy (core/PlacementMap.h) — the measured
  /// side of SimResult::PlacementRemoteBytesPerStep, equal to it by
  /// construction.
  int64_t remoteBytesPerStep() const;

  /// The plan-derived page-ownership map the init epoch placed by.
  const PlacementMap &placementMap() const { return PMap; }

  /// Per-step global values of the program's \p R-th reduction, one entry
  /// per step run so far — bit-identical to the serial stepper's
  /// reductionHistory for every plan shape.
  const std::vector<double> &reductionHistory(size_t R) const;

private:
  struct IslandState;

  void threadMain(int Worker, int Island, int ThreadInTeam, int Steps,
                  void *Control);
  void rebindForStep(IslandState &IS, int StepInEpoch);
  void importEpochInputs(IslandState &IS, int Worker, int ThreadInTeam,
                         int NumThreads);
  void runPlacementEpoch();
  double &partialAt(size_t Island, int StepInEpoch, size_t R);
  void resetIslandPartials(size_t Island);
  void foldPassReduction(IslandState &IS, size_t Island, int StepInEpoch,
                         const StagePass &Pass);
  void appendEpochReductions();

  StencilProgram Program;
  KernelTable Kernels;
  Domain Dom;
  ExecutionPlan Plan;
  ExecutorOptions Opts;

  std::map<ArrayId, Array3D> External;
  std::vector<std::unique_ptr<IslandState>> IslandStates;

  /// Worker I's (island, thread-in-team) coordinates.
  std::vector<std::pair<int, int>> WorkerCoords;
  std::unique_ptr<WorkerPool> Pool;

  /// Logical shared-array traffic of one epoch (all islands): import (or
  /// per-step input) reads and final-step output writes. Computed once at
  /// construction from the plan's pass regions.
  int64_t SharedReadBytesPerEpoch = 0;
  int64_t SharedWriteBytesPerEpoch = 0;

  /// Placement model state: the page-ownership map under Opts.Placement
  /// and the remote slice of the per-epoch shared traffic it implies,
  /// both fixed at construction.
  PlacementMap PMap;
  int64_t RemoteBytesPerEpoch = 0;
  int64_t PagesTouched = 0; ///< Pages zeroed by the placement epoch.

  /// Reduction machinery (empty when the program declares none).
  /// Reductions holds the combiners in ReductionDef order;
  /// StageFolds[stage] lists the reduction indices the stage produces;
  /// Partials is the (island, step-in-epoch, reduction) scratch the teams'
  /// thread 0s write (reset per epoch, combined at global barriers);
  /// ReductionLog accumulates the per-step global values.
  std::vector<ReductionBinding> Reductions;
  std::vector<std::vector<size_t>> StageFolds;
  std::vector<double> Partials;
  std::vector<std::vector<double>> ReductionLog;

  bool Profiling = false;
  ExecStats Stats;
  std::mutex StatsMutex;
};

} // namespace icores

#endif // ICORES_EXEC_PROGRAMEXECUTOR_H
