//===- exec/ProgramExecutor.h - Generic threaded plan execution -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-agnostic threaded runtime: executes any ExecutionPlan
/// for any (StencilProgram, KernelTable) pair. Islands run concurrently
/// with private intermediates; passes are split among team threads along
/// their longest dimension and followed by a team barrier; the program's
/// feedback pairs advance the state between steps. PlanExecutor (the
/// MPDATA-flavoured API) is a thin wrapper over this class.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_EXEC_PROGRAMEXECUTOR_H
#define ICORES_EXEC_PROGRAMEXECUTOR_H

#include "core/ExecutionPlan.h"
#include "grid/Array3D.h"
#include "grid/Domain.h"
#include "stencil/FieldStore.h"
#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"

#include <map>
#include <memory>
#include <vector>

namespace icores {

/// Threaded executor for one plan of one program over one domain.
class ProgramExecutor {
public:
  /// \p Plan must target Dom.coreBox(); \p Kernels must cover the program.
  ProgramExecutor(StencilProgram Program, KernelTable Kernels,
                  const Domain &Dom, ExecutionPlan Plan);
  ~ProgramExecutor();

  const Domain &domain() const { return Dom; }
  const StencilProgram &program() const { return Program; }
  const ExecutionPlan &plan() const { return Plan; }

  /// Mutable access to any step-input or step-output array.
  Array3D &array(ArrayId Id);
  const Array3D &array(ArrayId Id) const;

  /// Refreshes the halos of every step input (call after initialization).
  void prepareInputs();

  /// Advances \p Steps steps with the plan's threads. Afterwards each
  /// feedback Target array holds the newest state.
  void run(int Steps);

private:
  struct IslandState;

  void threadMain(int Island, int ThreadInTeam, int Steps, void *Control);

  StencilProgram Program;
  KernelTable Kernels;
  Domain Dom;
  ExecutionPlan Plan;

  std::map<ArrayId, Array3D> External;
  std::vector<std::unique_ptr<IslandState>> IslandStates;
};

} // namespace icores

#endif // ICORES_EXEC_PROGRAMEXECUTOR_H
