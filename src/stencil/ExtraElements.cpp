//===- stencil/ExtraElements.cpp - Redundant-computation accounting ------===//

#include "stencil/ExtraElements.h"

#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

using namespace icores;

ExtraElementsReport
icores::countExtraElements(const StencilProgram &Program,
                           const Box3 &GlobalTarget,
                           const std::vector<Box3> &Parts) {
  ICORES_CHECK(!Parts.empty(), "partition must have at least one part");

  // Sanity: parts must tile the target exactly (disjoint cover).
  int64_t CoveredPoints = 0;
  for (const Box3 &Part : Parts) {
    ICORES_CHECK(GlobalTarget.containsBox(Part),
                 "partition part escapes the global target");
    CoveredPoints += Part.numPoints();
  }
  ICORES_CHECK(CoveredPoints == GlobalTarget.numPoints(),
               "partition does not exactly cover the global target");

  RegionRequirements Global = computeRequirements(Program, GlobalTarget);

  ExtraElementsReport Report;
  Report.BaselinePoints = Global.totalStagePoints();
  Report.PartPoints.reserve(Parts.size());

  for (const Box3 &Part : Parts) {
    RegionRequirements Local = computeRequirements(Program, Part);
    int64_t PartTotal = 0;
    for (unsigned S = 0; S != Program.numStages(); ++S) {
      Box3 Clipped = Local.StageRegion[S].intersect(Global.StageRegion[S]);
      PartTotal += Clipped.numPoints();
    }
    Report.PartPoints.push_back(PartTotal);
    Report.PartitionedPoints += PartTotal;
  }
  return Report;
}
