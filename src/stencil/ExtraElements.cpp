//===- stencil/ExtraElements.cpp - Redundant-computation accounting ------===//

#include "stencil/ExtraElements.h"

#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

using namespace icores;

ExtraElementsReport
icores::countExtraElements(const StencilProgram &Program,
                           const Box3 &GlobalTarget,
                           const std::vector<Box3> &Parts) {
  return countExtraElements(Program, GlobalTarget, Parts, 1);
}

ExtraElementsReport
icores::countExtraElements(const StencilProgram &Program,
                           const Box3 &GlobalTarget,
                           const std::vector<Box3> &Parts,
                           int TemporalDepth) {
  ICORES_CHECK(!Parts.empty(), "partition must have at least one part");
  ICORES_CHECK(TemporalDepth >= 1, "temporal depth must be at least 1");

  // Sanity: parts must tile the target exactly (disjoint cover).
  int64_t CoveredPoints = 0;
  for (const Box3 &Part : Parts) {
    ICORES_CHECK(GlobalTarget.containsBox(Part),
                 "partition part escapes the global target");
    CoveredPoints += Part.numPoints();
  }
  ICORES_CHECK(CoveredPoints == GlobalTarget.numPoints(),
               "partition does not exactly cover the global target");

  // The baseline is the original (non-temporal) execution over the same
  // number of time steps: one global one-step cone per step.
  RegionRequirements Global = computeRequirements(Program, GlobalTarget);

  // Per-step global cones for the clipping bound: the widest regions any
  // execution of this fused epoch evaluates. For TemporalDepth == 1 this
  // is exactly {Global}.
  std::vector<Box3> GlobalStepTargets =
      temporalStepTargets(Program, GlobalTarget, TemporalDepth);
  std::vector<RegionRequirements> GlobalStep;
  GlobalStep.reserve(GlobalStepTargets.size());
  for (const Box3 &G : GlobalStepTargets)
    GlobalStep.push_back(computeRequirements(Program, G));

  ExtraElementsReport Report;
  Report.BaselinePoints = Global.totalStagePoints() * TemporalDepth;
  Report.PartPoints.reserve(Parts.size());

  for (const Box3 &Part : Parts) {
    std::vector<Box3> StepTargets =
        temporalStepTargets(Program, Part, TemporalDepth);
    int64_t PartTotal = 0;
    for (int T = 0; T != TemporalDepth; ++T) {
      RegionRequirements Local =
          computeRequirements(Program, StepTargets[static_cast<size_t>(T)]);
      const RegionRequirements &Bound =
          GlobalStep[static_cast<size_t>(T)];
      for (unsigned S = 0; S != Program.numStages(); ++S) {
        Box3 Clipped = Local.StageRegion[S].intersect(Bound.StageRegion[S]);
        PartTotal += Clipped.numPoints();
      }
    }
    Report.PartPoints.push_back(PartTotal);
    Report.PartitionedPoints += PartTotal;
  }
  return Report;
}
