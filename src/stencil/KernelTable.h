//===- stencil/KernelTable.h - Per-stage compute callbacks ------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelTable binds a StencilProgram's stages to executable kernels. The
/// planners, executors and solvers are application-agnostic: they consume
/// a (StencilProgram, KernelTable) pair, so any set of heterogeneous
/// stencils — MPDATA, the advection-diffusion demo app, or a user's own —
/// runs through the same islands-of-cores machinery.
///
/// Contract for every kernel: evaluate its stage over exactly the given
/// region, reading only within the offset windows declared in the IR,
/// pointwise with a fixed evaluation order (so results are bit-identical
/// under any region partitioning).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_KERNELTABLE_H
#define ICORES_STENCIL_KERNELTABLE_H

#include "grid/Box3.h"
#include "stencil/StencilIR.h"

#include <functional>
#include <string>
#include <vector>

namespace icores {

class FieldStore;

/// Which kernel implementation backs a KernelTable. All variants of a
/// program must produce bit-identical results (identical floating-point
/// expression order per element); they differ only in loop/pointer shape.
/// Lives in the stencil layer so backend-agnostic consumers (simulator,
/// planners, CLIs) can name a variant without linking the kernels.
enum class KernelVariant {
  Reference, ///< Index-checked scalar loops (the readable spec).
  Optimized, ///< Strided-pointer loops (the portable production path).
  Simd,      ///< Contiguous __restrict k-loops shaped for vectorization.
};

/// Short stable name: "ref", "opt" or "simd" (CLI flag values, bench JSON
/// and lint labels).
const char *kernelVariantName(KernelVariant Variant);

/// Parses kernelVariantName() output back to the enum. Returns false when
/// \p Name is not a known variant (leaving \p Variant untouched).
bool parseKernelVariant(const std::string &Name, KernelVariant &Variant);

/// Computes one stage over one region of a field store.
using StageKernel = std::function<void(FieldStore &, const Box3 &)>;

/// Stage-indexed kernel registry for one program.
class KernelTable {
public:
  KernelTable() = default;
  explicit KernelTable(unsigned NumStages) : Kernels(NumStages) {}

  /// Registers the kernel for \p Stage (replacing any previous one).
  void set(StageId Stage, StageKernel Kernel);

  bool isSet(StageId Stage) const;
  unsigned numStages() const {
    return static_cast<unsigned>(Kernels.size());
  }

  /// Runs \p Stage over \p Region; empty regions are no-ops.
  void run(FieldStore &Fields, StageId Stage, const Box3 &Region) const;

  /// True when every stage of \p Program has a kernel.
  bool coversProgram(const StencilProgram &Program) const;

private:
  std::vector<StageKernel> Kernels;
};

} // namespace icores

#endif // ICORES_STENCIL_KERNELTABLE_H
