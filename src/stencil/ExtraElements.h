//===- stencil/ExtraElements.h - Redundant-computation accounting -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counts the extra grid elements the islands-of-cores transformation
/// computes redundantly for a given partition of the domain, relative to
/// the original (unpartitioned) execution. This is the engine behind the
/// paper's Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_EXTRAELEMENTS_H
#define ICORES_STENCIL_EXTRAELEMENTS_H

#include "grid/Box3.h"
#include "stencil/StencilIR.h"

#include <vector>

namespace icores {

/// Work accounting for one partitioned execution.
struct ExtraElementsReport {
  /// Points computed by the original version: sum over stages of the global
  /// dependence-cone region for the full target.
  int64_t BaselinePoints = 0;

  /// Points computed when each part evaluates its own cone (clipped to the
  /// global stage region, since nothing outside it is ever computed).
  int64_t PartitionedPoints = 0;

  /// Per-part totals, parallel to the parts vector passed in.
  std::vector<int64_t> PartPoints;

  int64_t extraPoints() const { return PartitionedPoints - BaselinePoints; }

  /// Extra work as a fraction of the original version's work (Table 2's
  /// percentage divided by 100).
  double extraFraction() const {
    return BaselinePoints == 0
               ? 0.0
               : static_cast<double>(extraPoints()) /
                     static_cast<double>(BaselinePoints);
  }
};

/// Counts redundant elements for \p Parts, a disjoint cover of
/// \p GlobalTarget. Each part's stage regions are clipped to the global
/// stage regions (values outside them are never computed by anyone, so they
/// cannot be "extra").
ExtraElementsReport countExtraElements(const StencilProgram &Program,
                                       const Box3 &GlobalTarget,
                                       const std::vector<Box3> &Parts);

/// Temporal-depth generalization: counts the work of one fused epoch of
/// \p TemporalDepth time steps, where every part evaluates the widened
/// per-step cones of temporalStepTargets() and the baseline is the
/// original (non-temporal) execution of the same number of steps:
/// TemporalDepth times the one-step global cone. Each part's per-step
/// stage regions are clipped against the per-step *global* cones (the
/// widest any temporally blocked execution of this epoch evaluates).
/// TemporalDepth == 1 is exactly the three-argument overload.
ExtraElementsReport countExtraElements(const StencilProgram &Program,
                                       const Box3 &GlobalTarget,
                                       const std::vector<Box3> &Parts,
                                       int TemporalDepth);

} // namespace icores

#endif // ICORES_STENCIL_EXTRAELEMENTS_H
