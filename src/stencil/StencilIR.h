//===- stencil/StencilIR.h - Heterogeneous stencil program IR ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil intermediate representation. A StencilProgram is an ordered
/// chain of stages; each stage writes one or more arrays and reads others
/// through per-dimension offset windows. MPDATA's 17 heterogeneous stages
/// are expressed once in this IR (see mpdata/MpdataProgram.h) and every
/// other component — halo analysis, extra-element accounting (Table 2),
/// DRAM-traffic accounting, the planners, the executors and the performance
/// simulator — consumes the same description.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_STENCILIR_H
#define ICORES_STENCIL_STENCILIR_H

#include "grid/Box3.h"

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace icores {

class DiagnosticEngine;

/// Index of an array in a StencilProgram's array table.
using ArrayId = int;

/// Index of a stage in a StencilProgram's stage list.
using StageId = int;

/// Sentinel for "no stage" (e.g. producer of a time-step input).
inline constexpr StageId NoStage = -1;

/// Role of an array within one time step.
enum class ArrayRole {
  StepInput,    ///< Loaded from main memory at the start of the step.
  Intermediate, ///< Produced and consumed within the step; cacheable.
  StepOutput,   ///< Stored to main memory at the end of the step.
};

/// Static description of one array used by the program.
struct ArrayInfo {
  std::string Name;
  ArrayRole Role = ArrayRole::Intermediate;
  int ElementBytes = sizeof(double);
};

/// One read operand of a stage: which array, and the inclusive window of
/// offsets accessed per dimension (MinOff[d] <= 0 <= MaxOff[d] typically,
/// but one-sided windows such as {-1, 0} are common for donor-cell fluxes).
struct StageInput {
  ArrayId Array = 0;
  std::array<int, 3> MinOff = {0, 0, 0};
  std::array<int, 3> MaxOff = {0, 0, 0};

  /// Window accessing only the centre point.
  static StageInput center(ArrayId A) { return {A, {0, 0, 0}, {0, 0, 0}}; }

  /// Window accessing offsets [Min, Max] in dimension \p Dim only.
  static StageInput alongDim(ArrayId A, int Dim, int Min, int Max) {
    StageInput In = center(A);
    In.MinOff[Dim] = Min;
    In.MaxOff[Dim] = Max;
    return In;
  }

  /// Window accessing +/-1 in every dimension (box neighborhood).
  static StageInput box1(ArrayId A) { return {A, {-1, -1, -1}, {1, 1, 1}}; }

  /// Region of \p A read when this stage is computed over \p OutRegion.
  Box3 readRegion(const Box3 &OutRegion) const {
    Box3 R = OutRegion;
    for (int D = 0; D != 3; ++D) {
      R.Lo[D] += MinOff[D];
      R.Hi[D] += MaxOff[D];
    }
    return R;
  }
};

/// Static description of one stage (one heterogeneous stencil).
struct StageDef {
  std::string Name;
  std::vector<ArrayId> Outputs;
  std::vector<StageInput> Inputs;
  /// Floating-point operations per output point (counting the expression as
  /// written: +,-,*,/ and fabs/min/max each as one flop).
  int FlopsPerPoint = 0;
};

/// Time-stepping feedback: after each step, the Source output array
/// becomes the Target input array of the next step (a pointer swap in the
/// runtimes).
struct FeedbackPair {
  ArrayId Source = 0; ///< A StepOutput array.
  ArrayId Target = 0; ///< A StepInput array.
};

/// Static declaration of a per-step global reduction: after every time
/// step the runtime folds the core values of one StepOutput array into a
/// single scalar (e.g. a CFL number or a max norm). The declaration is
/// structural — which array, under which name — so every plan-level
/// consumer (ScheduleCheck, ScheduleOptimizer, the registry) can reason
/// about the all-threads dependence it creates; the executable combiner
/// lives in a ReductionBinding, exactly as kernels live in a KernelTable
/// apart from their StageDefs.
struct ReductionDef {
  std::string Name;  ///< Stable key, unique within the program.
  ArrayId Array = 0; ///< The reduced StepOutput array.
};

/// Executable half of a reduction: the fold the runtimes apply over the
/// reduced array's values, keyed by the ReductionDef name.
///
/// Contract: Combine must be associative, commutative and duplicate
/// tolerant (folding the same value twice must not change the result —
/// max/min/absmax-style folds qualify, a plain sum does not). Temporal
/// islands plans evaluate overlapping dependence cones redundantly, so a
/// cell's bit-identical value may enter the fold once per island; the
/// contract is what keeps every schedule's reduction bit-identical to the
/// serial stepper's canonical i,j,k scan.
struct ReductionBinding {
  std::string Name; ///< Matches a ReductionDef of the program.
  std::function<double(double, double)> Combine;
  double Identity = 0.0; ///< Fold seed (and value over an empty region).
};

/// An ordered heterogeneous stencil program.
///
/// Invariants checked by validate():
///  - stages are topologically ordered (a stage reads only step inputs and
///    arrays produced by earlier stages),
///  - every array has at most one producing stage and appears at most once
///    in a stage's Outputs,
///  - no stage reads an array it also writes (the kernels' pointwise
///    contract would make such a stage order-dependent),
///  - offset windows are well-formed (MinOff <= MaxOff per dimension),
///  - step outputs are produced, step inputs never are,
///  - feedback pairs connect a step output to a step input.
class StencilProgram {
public:
  /// Adds an array; returns its id.
  ArrayId addArray(std::string Name, ArrayRole Role);

  /// Appends a stage; returns its id. Stages must be added in execution
  /// order.
  StageId addStage(StageDef Def);

  /// Declares that output \p Source feeds input \p Target between steps.
  void addFeedback(ArrayId Source, ArrayId Target);

  const std::vector<FeedbackPair> &feedbacks() const { return Feedbacks; }

  /// Declares a per-step global reduction over a StepOutput array.
  void addReduction(ReductionDef Def);

  const std::vector<ReductionDef> &reductions() const { return Reductions; }

  /// Whether \p Stage produces any reduced array. The runtimes fold a
  /// reduced array right after its producing pass, so such passes must
  /// keep their trailing team barrier (see exec/ScheduleCheck.h).
  bool stageWritesReduced(StageId Stage) const;

  unsigned numArrays() const { return static_cast<unsigned>(Arrays.size()); }
  unsigned numStages() const { return static_cast<unsigned>(Stages.size()); }

  const ArrayInfo &array(ArrayId Id) const { return Arrays[checkArray(Id)]; }
  const StageDef &stage(StageId Id) const { return Stages[checkStage(Id)]; }

  /// Stage producing \p Id, or NoStage for step inputs.
  StageId producerOf(ArrayId Id) const { return Producer[checkArray(Id)]; }

  /// All step-input array ids in id order.
  std::vector<ArrayId> stepInputs() const;

  /// All step-output array ids in id order.
  std::vector<ArrayId> stepOutputs() const;

  /// Sum of FlopsPerPoint over all stages (flops per grid point per step if
  /// every stage were computed over the same region).
  int64_t totalFlopsPerPoint() const;

  /// Checks all structural invariants; fills \p Error and returns false on
  /// the first violation. Convenience wrapper over the DiagnosticEngine
  /// overload below.
  bool validate(std::string &Error) const;

  /// Checks all structural invariants, reporting *every* violation as a
  /// `program.*` finding. Returns true when no errors were reported.
  bool validate(DiagnosticEngine &Diags) const;

private:
  size_t checkArray(ArrayId Id) const;
  size_t checkStage(StageId Id) const;

  std::vector<ArrayInfo> Arrays;
  std::vector<StageDef> Stages;
  std::vector<StageId> Producer; // Parallel to Arrays.
  std::vector<FeedbackPair> Feedbacks;
  std::vector<ReductionDef> Reductions;
};

/// Array id of the program array named \p Name, or -1 when absent.
ArrayId findArrayId(const StencilProgram &Program, const std::string &Name);

/// Reorders \p Bindings into the program's ReductionDef order, checking
/// (fatally) that every declared reduction has a binding with a callable
/// Combine. A program without reductions yields an empty list. Runtimes
/// use this so their fold loops can index bindings and declarations in
/// lockstep; the registry reports the same mismatches as structured
/// `registry.*` findings before any runtime is constructed.
std::vector<ReductionBinding>
orderedReductionBindings(const StencilProgram &Program,
                         std::vector<ReductionBinding> Bindings);

} // namespace icores

#endif // ICORES_STENCIL_STENCILIR_H
