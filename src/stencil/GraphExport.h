//===- stencil/GraphExport.h - Stage-graph visualization --------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a StencilProgram's stage/array dependence graph as Graphviz DOT
/// (for documentation and for eyeballing transformed programs) and as a
/// plain-text adjacency listing.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_GRAPHEXPORT_H
#define ICORES_STENCIL_GRAPHEXPORT_H

#include "stencil/StencilIR.h"

namespace icores {

class OStream;

/// Writes a DOT digraph: box nodes for stages, ellipse nodes for arrays;
/// edges array->stage for reads (labelled with the offset window when it
/// is not the centre point) and stage->array for writes.
void exportProgramDot(const StencilProgram &Program, OStream &OS);

/// Writes a compact text listing: one line per stage with its inputs,
/// outputs and flop weight.
void exportProgramText(const StencilProgram &Program, OStream &OS);

} // namespace icores

#endif // ICORES_STENCIL_GRAPHEXPORT_H
