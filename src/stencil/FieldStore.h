//===- stencil/FieldStore.h - Array storage for a stencil program -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FieldStore maps the ArrayIds of a StencilProgram to concrete Array3D
/// storage. An entry is either owned (allocated by this store — the normal
/// case for per-island intermediate buffers) or bound to an external array
/// (the shared time-step inputs/outputs every island reads and writes).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_FIELDSTORE_H
#define ICORES_STENCIL_FIELDSTORE_H

#include "grid/Array3D.h"
#include "stencil/StencilIR.h"

#include <memory>
#include <vector>

namespace icores {

/// Per-execution-context array table for one StencilProgram.
///
/// get() is virtual so that instrumented stores (stencil/AccessAudit.h's
/// AuditFieldStore) can observe which arrays a kernel fetches. Kernels
/// fetch each array once per (stage, region) invocation, so the virtual
/// dispatch is never on a per-element path.
class FieldStore {
public:
  explicit FieldStore(unsigned NumArrays) : Slots(NumArrays) {}
  virtual ~FieldStore() = default;

  FieldStore(const FieldStore &) = delete;
  FieldStore &operator=(const FieldStore &) = delete;
  FieldStore(FieldStore &&) = default;
  FieldStore &operator=(FieldStore &&) = default;

  /// Allocates an owned array over \p IndexSpace for \p Id. With
  /// \p PadK > 0 the k-rows are padded to a multiple of PadK elements
  /// (see Array3D::reset); pad bytes count toward neither ownedBytes()
  /// nor the traffic model.
  void allocateOwned(ArrayId Id, const Box3 &IndexSpace, int PadK = 0);

  /// allocateOwned() without touching the new storage (see
  /// Array3D::resetUntouched): the owner must zero the array before any
  /// kernel reads it. The NUMA placement init epoch uses this so an
  /// island's intermediates are first-touched by its own pinned team.
  void allocateOwnedUntouched(ArrayId Id, const Box3 &IndexSpace,
                              int PadK = 0);

  /// Binds \p Id to caller-owned storage (shared inputs/outputs). The
  /// pointee must outlive this store.
  void bindExternal(ArrayId Id, Array3D *External);

  /// Re-points an already-bound external slot at different caller-owned
  /// storage (temporal blocking rebinds feedback arrays to island-private
  /// buffers between fused steps). The slot must currently be bound to an
  /// external array, not owned storage.
  void rebindExternal(ArrayId Id, Array3D *External);

  bool isBound(ArrayId Id) const { return slot(Id).Ptr != nullptr; }

  virtual Array3D &get(ArrayId Id);
  virtual const Array3D &get(ArrayId Id) const;

  /// Total bytes of owned storage (the working set the (3+1)D block must
  /// keep cache-resident).
  int64_t ownedBytes() const;

private:
  struct Slot {
    Array3D *Ptr = nullptr;
    std::unique_ptr<Array3D> Owned;
  };

  Slot &slot(ArrayId Id);
  const Slot &slot(ArrayId Id) const;

  std::vector<Slot> Slots;
};

} // namespace icores

#endif // ICORES_STENCIL_FIELDSTORE_H
