//===- stencil/AccessAudit.cpp - Kernel access-footprint auditor ----------===//

#include "stencil/AccessAudit.h"

#include "grid/Array3D.h"
#include "stencil/KernelTable.h"
#include "support/Diagnostics.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/Random.h"

#include <cmath>
#include <cstdlib>

using namespace icores;

Array3D &AuditFieldStore::get(ArrayId Id) {
  FetchedFlags[static_cast<size_t>(Id)] = 1;
  return FieldStore::get(Id);
}

const Array3D &AuditFieldStore::get(ArrayId Id) const {
  FetchedFlags[static_cast<size_t>(Id)] = 1;
  return FieldStore::get(Id);
}

void AuditFieldStore::clearFetched() {
  FetchedFlags.assign(FetchedFlags.size(), 0);
}

bool AuditFieldStore::wasFetched(ArrayId Id) const {
  ICORES_CHECK(Id >= 0 &&
                   static_cast<size_t>(Id) < FetchedFlags.size(),
               "fetch query id out of range");
  return FetchedFlags[static_cast<size_t>(Id)] != 0;
}

namespace {

/// Visits every point of \p B in (i, j, k) order.
template <typename Fn> void forBox(const Box3 &B, Fn &&Body) {
  for (int I = B.Lo[0]; I != B.Hi[0]; ++I)
    for (int J = B.Lo[1]; J != B.Hi[1]; ++J)
      for (int K = B.Lo[2]; K != B.Hi[2]; ++K)
        Body(I, J, K);
}

/// Fills \p A with nonzero values of random sign and magnitude in
/// [0.75, 1.75), so sign-dependent paths (donor-cell upwind selection)
/// take both branches across the region and nothing is annihilated by a
/// zero factor.
void fillRandomSigned(Array3D &A, SplitMix64 &Rng) {
  const Box3 &Space = A.indexSpace();
  forBox(Space, [&](int I, int J, int K) {
    double Mag = Rng.nextInRange(0.75, 1.75);
    A.at(I, J, K) = (Rng.next() & 1) ? Mag : -Mag;
  });
}

/// The two probe replacement values: larger in magnitude than any value in
/// the store (so min/max chains select them) and of both signs (so
/// sign-selected branches flip). Both always differ from \p Orig.
double probeValue(double Orig, int Polarity) {
  double Mag = std::fabs(Orig) * 2.0 + 3.0;
  return Polarity == 0 ? Mag : -Mag;
}

/// Renders a per-dimension offset window as "[a,b]x[c,d]x[e,f]".
std::string windowStr(const std::array<int, 3> &Min,
                      const std::array<int, 3> &Max) {
  return formatString("[%d,%d]x[%d,%d]x[%d,%d]", Min[0], Max[0], Min[1],
                      Max[1], Min[2], Max[2]);
}

int64_t windowVolume(const std::array<int, 3> &Min,
                     const std::array<int, 3> &Max) {
  int64_t V = 1;
  for (int D = 0; D != 3; ++D)
    V *= Max[D] - Min[D] + 1;
  return V;
}

} // namespace

StageAccessFootprint
icores::probeStageAccess(const StencilProgram &Program,
                         const KernelTable &Kernels, StageId Stage,
                         const AccessAuditOptions &Opts) {
  const StageDef &S = Program.stage(Stage);
  const unsigned NumArrays = Program.numArrays();
  const Box3 Out = Opts.ProbeRegion;
  ICORES_CHECK(!Out.empty(), "audit probe region must be non-empty");
  ICORES_CHECK(Opts.Trials >= 1 && Opts.SlackRadius >= 1,
               "audit needs at least one trial and one cell of slack");

  StageAccessFootprint FP;
  FP.Stage = Stage;
  FP.Reads.resize(NumArrays);
  FP.Fetched.assign(NumArrays, 0);
  FP.UndeclaredWritePoints.assign(NumArrays, 0);
  FP.OutsideWritePoints.assign(NumArrays, 0);
  FP.UncoveredPoints.assign(NumArrays, 0);

  // Declared per-array windows: the box hull when an array appears in
  // several StageInputs.
  for (const StageInput &In : S.Inputs) {
    StageAccessFootprint::ReadWindow &W =
        FP.Reads[static_cast<size_t>(In.Array)];
    if (!W.Declared) {
      W.Declared = true;
      W.DeclMin = In.MinOff;
      W.DeclMax = In.MaxOff;
    } else {
      for (int D = 0; D != 3; ++D) {
        W.DeclMin[D] = std::min(W.DeclMin[D], In.MinOff[D]);
        W.DeclMax[D] = std::max(W.DeclMax[D], In.MaxOff[D]);
      }
    }
  }

  // Allocation pad: the widest declared offset plus the slack radius, so
  // reads up to SlackRadius outside any declared window stay in bounds and
  // are attributable.
  int Pad = Opts.SlackRadius;
  for (const StageInput &In : S.Inputs)
    for (int D = 0; D != 3; ++D)
      Pad = std::max({Pad, std::abs(In.MinOff[D]) + Opts.SlackRadius,
                      std::abs(In.MaxOff[D]) + Opts.SlackRadius});
  const Box3 Alloc = Out.grownAll(Pad);

  std::vector<char> IsOutput(NumArrays, 0);
  for (ArrayId O : S.Outputs)
    IsOutput[static_cast<size_t>(O)] = 1;

  // Output cells never written, intersected across trials (a cell that
  // coincidentally keeps its random pre-fill value in one trial cannot do
  // so in all of them).
  std::vector<std::vector<char>> Uncovered(NumArrays);

  for (int Trial = 0; Trial != Opts.Trials; ++Trial) {
    AuditFieldStore Fields(NumArrays);
    SplitMix64 Rng(Opts.Seed + static_cast<uint64_t>(Trial));
    std::vector<Array3D> Pre(NumArrays);
    for (unsigned A = 0; A != NumArrays; ++A) {
      ArrayId Id = static_cast<ArrayId>(A);
      Fields.allocateOwned(Id, Alloc);
      fillRandomSigned(Fields.get(Id), Rng);
      Pre[A] = Fields.get(Id);
    }

    Fields.clearFetched();
    Kernels.run(Fields, Stage, Out);
    for (unsigned A = 0; A != NumArrays; ++A)
      if (Fields.wasFetched(static_cast<ArrayId>(A)))
        FP.Fetched[A] = 1;

    // --- Write footprint: diff every array against its pre-fill --------
    std::vector<char> Changed(NumArrays, 0);
    for (unsigned A = 0; A != NumArrays; ++A) {
      const Array3D &Now = Fields.get(static_cast<ArrayId>(A));
      int64_t UndeclaredHere = 0, OutsideHere = 0;
      std::vector<char> UnwrittenHere;
      if (IsOutput[A])
        UnwrittenHere.assign(static_cast<size_t>(Out.numPoints()), 0);
      int64_t OutIndex = 0;
      forBox(Alloc, [&](int I, int J, int K) {
        bool CellChanged = Now.at(I, J, K) != Pre[A].at(I, J, K);
        if (CellChanged)
          Changed[A] = 1;
        if (!IsOutput[A]) {
          if (CellChanged)
            ++UndeclaredHere;
          return;
        }
        if (Out.contains(I, J, K)) {
          if (!CellChanged)
            UnwrittenHere[static_cast<size_t>(OutIndex)] = 1;
          ++OutIndex;
        } else if (CellChanged) {
          ++OutsideHere;
        }
      });
      FP.UndeclaredWritePoints[A] =
          std::max(FP.UndeclaredWritePoints[A], UndeclaredHere);
      FP.OutsideWritePoints[A] =
          std::max(FP.OutsideWritePoints[A], OutsideHere);
      if (IsOutput[A]) {
        if (Trial == 0)
          Uncovered[A] = std::move(UnwrittenHere);
        else
          for (size_t C = 0; C != Uncovered[A].size(); ++C)
            Uncovered[A][C] = Uncovered[A][C] && UnwrittenHere[C];
      }
    }

    // Post-run output values: the baseline every probe run diffs against.
    std::vector<Array3D> Post(NumArrays);
    std::vector<unsigned> ChangedArrays;
    for (unsigned A = 0; A != NumArrays; ++A) {
      if (Changed[A])
        ChangedArrays.push_back(A);
      if (IsOutput[A])
        Post[A] = Fields.get(static_cast<ArrayId>(A));
    }

    // --- Read footprint: perturb one candidate cell at a time ----------
    for (unsigned A = 0; A != NumArrays; ++A) {
      ArrayId Id = static_cast<ArrayId>(A);
      StageAccessFootprint::ReadWindow &W = FP.Reads[A];
      // Probe arrays the kernel fetched or the IR declares as inputs.
      // Arrays the baseline run modified (the stage's outputs, or buggy
      // undeclared writes — flagged above) cannot be probed reliably:
      // the kernel overwrites the perturbation.
      if (!(FP.Fetched[A] || W.Declared) || Changed[A])
        continue;
      Array3D &Arr = Fields.get(Id);
      forBox(Alloc, [&](int CI, int CJ, int CK) {
        for (int Polarity = 0; Polarity != 2; ++Polarity) {
          for (unsigned CA : ChangedArrays)
            Fields.get(static_cast<ArrayId>(CA)) = Pre[CA];
          double Orig = Arr.at(CI, CJ, CK);
          Arr.at(CI, CJ, CK) = probeValue(Orig, Polarity);
          Kernels.run(Fields, Stage, Out);
          Arr.at(CI, CJ, CK) = Orig;
          for (ArrayId O : S.Outputs) {
            const Array3D &Now = Fields.get(O);
            const Array3D &Base = Post[static_cast<size_t>(O)];
            forBox(Out, [&](int PI, int PJ, int PK) {
              if (Now.at(PI, PJ, PK) == Base.at(PI, PJ, PK))
                return;
              std::array<int, 3> Off = {CI - PI, CJ - PJ, CK - PK};
              if (!W.Observed) {
                W.Observed = true;
                W.ObsMin = W.ObsMax = Off;
                return;
              }
              for (int D = 0; D != 3; ++D) {
                W.ObsMin[D] = std::min(W.ObsMin[D], Off[D]);
                W.ObsMax[D] = std::max(W.ObsMax[D], Off[D]);
              }
            });
          }
        }
      });
    }
  }

  for (unsigned A = 0; A != NumArrays; ++A) {
    int64_t N = 0;
    for (char C : Uncovered[A])
      N += C;
    FP.UncoveredPoints[A] = N;
  }
  return FP;
}

namespace {

void reportStageFindings(const StencilProgram &Program,
                         const StageAccessFootprint &FP,
                         DiagnosticEngine &Diags, const std::string &Label) {
  const StageDef &S = Program.stage(FP.Stage);
  auto annotate = [&](Finding &F, ArrayId Id) -> Finding & {
    F.note("stage", S.Name).note("array", Program.array(Id).Name);
    if (!Label.empty())
      F.note("variant", Label);
    return F;
  };
  std::vector<char> IsOutput(Program.numArrays(), 0);
  for (ArrayId O : S.Outputs)
    IsOutput[static_cast<size_t>(O)] = 1;

  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    ArrayId Id = static_cast<ArrayId>(A);
    const char *ArrName = Program.array(Id).Name.c_str();

    if (FP.UndeclaredWritePoints[A] > 0)
      annotate(Diags.report(
                   Severity::Error, "access.write.undeclared-array",
                   formatString("stage '%s' writes %lld cells of '%s', which "
                                "is not among its declared outputs",
                                S.Name.c_str(),
                                static_cast<long long>(
                                    FP.UndeclaredWritePoints[A]),
                                ArrName)),
               Id);
    if (FP.OutsideWritePoints[A] > 0)
      annotate(Diags.report(
                   Severity::Error, "access.write.outside-region",
                   formatString("stage '%s' writes %lld cells of output '%s' "
                                "outside the stage region",
                                S.Name.c_str(),
                                static_cast<long long>(FP.OutsideWritePoints[A]),
                                ArrName)),
               Id);
    if (FP.UncoveredPoints[A] > 0)
      annotate(Diags.report(
                   Severity::Warning, "access.write.region-uncovered",
                   formatString("stage '%s' leaves %lld cells of output '%s' "
                                "unwritten inside the stage region",
                                S.Name.c_str(),
                                static_cast<long long>(FP.UncoveredPoints[A]),
                                ArrName)),
               Id);

    const StageAccessFootprint::ReadWindow &W = FP.Reads[A];
    if (IsOutput[A])
      continue; // Reads of own outputs are rejected by validate().
    if (W.Observed && !W.Declared) {
      annotate(Diags.report(
                   Severity::Error, "access.read.undeclared-array",
                   formatString("stage '%s' reads '%s' (observed window %s) "
                                "without declaring it as an input — halo "
                                "analysis is unsound",
                                S.Name.c_str(), ArrName,
                                windowStr(W.ObsMin, W.ObsMax).c_str())),
               Id)
          .note("observed", windowStr(W.ObsMin, W.ObsMax));
    } else if (W.Observed && W.Declared) {
      bool Under = false, Over = false;
      for (int D = 0; D != 3; ++D) {
        Under |= W.ObsMin[D] < W.DeclMin[D] || W.ObsMax[D] > W.DeclMax[D];
        Over |= W.ObsMin[D] > W.DeclMin[D] || W.ObsMax[D] < W.DeclMax[D];
      }
      if (Under)
        annotate(Diags.report(
                     Severity::Error, "access.read.outside-window",
                     formatString("stage '%s' reads '%s' outside its declared "
                                  "window (observed %s, declared %s) — halo "
                                  "analysis is unsound",
                                  S.Name.c_str(), ArrName,
                                  windowStr(W.ObsMin, W.ObsMax).c_str(),
                                  windowStr(W.DeclMin, W.DeclMax).c_str())),
                 Id)
            .note("observed", windowStr(W.ObsMin, W.ObsMax))
            .note("declared", windowStr(W.DeclMin, W.DeclMax));
      else if (Over)
        annotate(Diags.report(
                     Severity::Warning, "access.read.window-slack",
                     formatString(
                         "stage '%s' declares a wider window on '%s' than it "
                         "reads (declared %s, observed %s): %lld extra "
                         "window cells per point inflate the Table 2 "
                         "redundant-computation budget",
                         S.Name.c_str(), ArrName,
                         windowStr(W.DeclMin, W.DeclMax).c_str(),
                         windowStr(W.ObsMin, W.ObsMax).c_str(),
                         static_cast<long long>(
                             windowVolume(W.DeclMin, W.DeclMax) -
                             windowVolume(W.ObsMin, W.ObsMax)))),
                 Id)
            .note("observed", windowStr(W.ObsMin, W.ObsMax))
            .note("declared", windowStr(W.DeclMin, W.DeclMax));
    } else if (W.Declared && !W.Observed) {
      annotate(Diags.report(
                   Severity::Warning, "access.read.declared-unused",
                   formatString("stage '%s' declares input '%s' but no read "
                                "of it influences any output",
                                S.Name.c_str(), ArrName)),
               Id);
    } else if (FP.Fetched[A] && !W.Declared) {
      annotate(Diags.report(
                   Severity::Warning, "access.fetch.undeclared-array",
                   formatString("stage '%s' fetches '%s' from the field "
                                "store without declaring it (no "
                                "value-affecting read observed)",
                                S.Name.c_str(), ArrName)),
               Id);
    }
  }
}

} // namespace

bool icores::auditStageAccess(const StencilProgram &Program,
                              const KernelTable &Kernels, StageId Stage,
                              DiagnosticEngine &Diags,
                              const AccessAuditOptions &Opts,
                              const std::string &Label) {
  size_t ErrorsBefore = Diags.numErrors();
  StageAccessFootprint FP = probeStageAccess(Program, Kernels, Stage, Opts);
  reportStageFindings(Program, FP, Diags, Label);
  return Diags.numErrors() == ErrorsBefore;
}

bool icores::auditProgramAccess(const StencilProgram &Program,
                                const KernelTable &Kernels,
                                DiagnosticEngine &Diags,
                                const AccessAuditOptions &Opts,
                                const std::string &Label) {
  size_t ErrorsBefore = Diags.numErrors();
  for (unsigned S = 0; S != Program.numStages(); ++S)
    auditStageAccess(Program, Kernels, static_cast<StageId>(S), Diags, Opts,
                     Label);
  return Diags.numErrors() == ErrorsBefore;
}
