//===- stencil/WorkloadRegistry.h - Multi-workload registry -----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload registry: any stencil program — stages and their access
/// windows, the declared halo depth, per-step reductions, kernel backends,
/// and seeded initial conditions — registers once as a WorkloadSpec and
/// thereby becomes a full citizen of the PlanBuilder / PlanVerifier /
/// icores-lint / ProgramExecutor / Simulator / PlanAdvisor stack. Nothing
/// downstream special-cases a workload by name: the CLIs select specs with
/// `--workload=`, the conformance test harness sweeps every registered
/// spec through strategies x kernel backends x temporal depths x balance
/// policies x stealing, and the plan-space prover enumerates them all.
///
/// Registration is validated, not trusted: add() re-runs the program's
/// structural validation and layers the registry's own contract checks on
/// top (unique names, declared halo covering the program's dependence
/// cone, kernel tables covering every stage for every advertised variant,
/// a combiner bound for every declared reduction, seeded init present).
/// Violations are reported as structured `registry.*` findings into the
/// caller's DiagnosticEngine — misregistration is a diagnosable event,
/// never a crash — and a spec with errors is not registered.
///
/// The built-in workloads (MPDATA, the advection-diffusion app, and the
/// rest of src/apps) register themselves in apps/Workloads.h; this header
/// deliberately knows none of them.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_WORKLOADREGISTRY_H
#define ICORES_STENCIL_WORKLOADREGISTRY_H

#include "grid/Domain.h"
#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"
#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace icores {

class Array3D;
class DiagnosticEngine;

/// What a workload's seeded initial-condition callback receives: the
/// domain being initialised, the caller's seed, and an accessor for the
/// runner's external (step input/output) arrays. The callback fills the
/// core cells of every step input deterministically from the seed; halo
/// refresh is the runner's job (see initWorkload below).
struct WorkloadInitContext {
  const Domain &Dom;
  uint64_t Seed = 0;
  std::function<Array3D &(ArrayId)> Array;
};

/// One registered workload: the data that makes a stencil program a
/// first-class citizen of every planner, runtime, analysis and test in
/// the repository.
struct WorkloadSpec {
  /// Stable CLI/JSON key ("mpdata", "advdiff", ...), unique per registry.
  std::string Name;
  /// One-line human description for --list-workloads output.
  std::string Description;
  /// The stencil program (stages, windows, feedbacks, reductions).
  StencilProgram Program;
  /// The halo depth the workload declares its domains with. Checked at
  /// registration against the program's actual dependence cone: a stage
  /// window deeper than this would read unfilled memory.
  int HaloDepth = 0;
  /// Kernel backends the workload implements; never empty.
  std::vector<KernelVariant> Variants = {KernelVariant::Reference};
  /// Kernel table factory, valid for every variant in Variants. Tables
  /// must satisfy the bit-identical cross-variant contract.
  std::function<KernelTable(KernelVariant)> Kernels;
  /// Seeded initial conditions (fills step-input cores; deterministic in
  /// the seed so every runner pair initialised alike compares bit-exact).
  std::function<void(const WorkloadInitContext &)> Init;
  /// Combiners for the program's declared reductions, keyed by name.
  std::vector<ReductionBinding> Reductions;
};

/// A validated, ordered collection of WorkloadSpecs.
class WorkloadRegistry {
public:
  /// Validates and registers \p Spec. Every contract violation is
  /// reported as a `registry.*` (or `program.*`) finding into \p Diags;
  /// returns true and stores the spec only when none were errors.
  bool add(WorkloadSpec Spec, DiagnosticEngine &Diags);

  /// The spec named \p Name, or nullptr.
  const WorkloadSpec *find(const std::string &Name) const;

  /// All specs in registration order.
  const std::vector<WorkloadSpec> &workloads() const { return Specs; }

  /// Registered names in registration order (the manifest
  /// `mpdata_cli --list-workloads` emits).
  std::vector<std::string> names() const;

  size_t size() const { return Specs.size(); }

private:
  std::vector<WorkloadSpec> Specs;
};

/// A domain sized for \p Spec: its declared halo depth over an
/// NI x NJ x NK core.
Domain workloadDomain(const WorkloadSpec &Spec, int NI, int NJ, int NK,
                      BoundaryMode Boundary = BoundaryMode::Periodic);

/// Seeds \p Runner (SerialStepper, ProgramExecutor, or anything exposing
/// domain()/array()/prepareInputs()) with the workload's initial
/// conditions and refreshes the input halos. Two runners initialised with
/// the same seed start bit-identical.
template <typename Runner>
void initWorkload(const WorkloadSpec &Spec, Runner &R, uint64_t Seed = 0) {
  ICORES_CHECK(Spec.Init, "workload has no registered init");
  WorkloadInitContext Ctx{
      R.domain(), Seed,
      [&R](ArrayId Id) -> decltype(R.array(Id)) { return R.array(Id); }};
  Spec.Init(Ctx);
  R.prepareInputs();
}

} // namespace icores

#endif // ICORES_STENCIL_WORKLOADREGISTRY_H
