//===- stencil/StencilIR.cpp - Heterogeneous stencil program IR ----------===//

#include "stencil/StencilIR.h"

#include "support/Diagnostics.h"
#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace icores;

size_t StencilProgram::checkArray(ArrayId Id) const {
  ICORES_CHECK(Id >= 0 && static_cast<size_t>(Id) < Arrays.size(),
               "array id out of range");
  return static_cast<size_t>(Id);
}

size_t StencilProgram::checkStage(StageId Id) const {
  ICORES_CHECK(Id >= 0 && static_cast<size_t>(Id) < Stages.size(),
               "stage id out of range");
  return static_cast<size_t>(Id);
}

ArrayId StencilProgram::addArray(std::string Name, ArrayRole Role) {
  ArrayInfo Info;
  Info.Name = std::move(Name);
  Info.Role = Role;
  Arrays.push_back(std::move(Info));
  Producer.push_back(NoStage);
  return static_cast<ArrayId>(Arrays.size() - 1);
}

StageId StencilProgram::addStage(StageDef Def) {
  StageId Id = static_cast<StageId>(Stages.size());
  for (ArrayId Out : Def.Outputs) {
    checkArray(Out);
    // A second producer is recorded as a validation error (not a hard
    // abort) so that validate() can report it alongside everything else;
    // producerOf() keeps returning the first producer.
    if (Producer[static_cast<size_t>(Out)] == NoStage)
      Producer[static_cast<size_t>(Out)] = Id;
  }
  Stages.push_back(std::move(Def));
  return Id;
}

void StencilProgram::addFeedback(ArrayId Source, ArrayId Target) {
  checkArray(Source);
  checkArray(Target);
  Feedbacks.push_back({Source, Target});
}

void StencilProgram::addReduction(ReductionDef Def) {
  checkArray(Def.Array);
  Reductions.push_back(std::move(Def));
}

bool StencilProgram::stageWritesReduced(StageId Stage) const {
  for (ArrayId Out : Stages[checkStage(Stage)].Outputs)
    for (const ReductionDef &R : Reductions)
      if (R.Array == Out)
        return true;
  return false;
}

ArrayId icores::findArrayId(const StencilProgram &Program,
                            const std::string &Name) {
  for (unsigned A = 0; A != Program.numArrays(); ++A)
    if (Program.array(static_cast<ArrayId>(A)).Name == Name)
      return static_cast<ArrayId>(A);
  return -1;
}

std::vector<ReductionBinding>
icores::orderedReductionBindings(const StencilProgram &Program,
                                 std::vector<ReductionBinding> Bindings) {
  std::vector<ReductionBinding> Ordered;
  Ordered.reserve(Program.reductions().size());
  for (const ReductionDef &Def : Program.reductions()) {
    const ReductionBinding *Found = nullptr;
    for (const ReductionBinding &B : Bindings)
      if (B.Name == Def.Name)
        Found = &B;
    ICORES_CHECK(Found && Found->Combine,
                 "program reduction has no callable combiner binding");
    Ordered.push_back(*Found);
  }
  return Ordered;
}

std::vector<ArrayId> StencilProgram::stepInputs() const {
  std::vector<ArrayId> Result;
  for (size_t A = 0; A != Arrays.size(); ++A)
    if (Arrays[A].Role == ArrayRole::StepInput)
      Result.push_back(static_cast<ArrayId>(A));
  return Result;
}

std::vector<ArrayId> StencilProgram::stepOutputs() const {
  std::vector<ArrayId> Result;
  for (size_t A = 0; A != Arrays.size(); ++A)
    if (Arrays[A].Role == ArrayRole::StepOutput)
      Result.push_back(static_cast<ArrayId>(A));
  return Result;
}

int64_t StencilProgram::totalFlopsPerPoint() const {
  int64_t Total = 0;
  for (const StageDef &S : Stages)
    Total += S.FlopsPerPoint;
  return Total;
}

bool StencilProgram::validate(std::string &Error) const {
  DiagnosticEngine Diags;
  if (validate(Diags))
    return true;
  Error = Diags.firstErrorMessage();
  return false;
}

bool StencilProgram::validate(DiagnosticEngine &Diags) const {
  size_t ErrorsBefore = Diags.numErrors();
  for (size_t SI = 0; SI != Stages.size(); ++SI) {
    const StageDef &S = Stages[SI];
    if (S.Outputs.empty())
      Diags
          .report(Severity::Error, "program.stage.no-outputs",
                  formatString("stage '%s' has no outputs", S.Name.c_str()))
          .note("stage", S.Name);
    for (size_t OI = 0; OI != S.Outputs.size(); ++OI) {
      ArrayId Out = S.Outputs[OI];
      const ArrayInfo &Info = Arrays[checkArray(Out)];
      if (Info.Role == ArrayRole::StepInput)
        Diags
            .report(Severity::Error, "program.stage.writes-step-input",
                    formatString("stage '%s' writes step input '%s'",
                                 S.Name.c_str(), Info.Name.c_str()))
            .note("stage", S.Name)
            .note("array", Info.Name);
      for (size_t OJ = 0; OJ != OI; ++OJ)
        if (S.Outputs[OJ] == Out)
          Diags
              .report(Severity::Error, "program.stage.duplicate-output",
                      formatString("stage '%s' lists output '%s' twice",
                                   S.Name.c_str(), Info.Name.c_str()))
              .note("stage", S.Name)
              .note("array", Info.Name);
      StageId Prod = Producer[static_cast<size_t>(Out)];
      if (Prod != NoStage && Prod != static_cast<StageId>(SI))
        Diags
            .report(Severity::Error, "program.array.multiple-producers",
                    formatString("array '%s' is produced by both stage '%s' "
                                 "and stage '%s'",
                                 Info.Name.c_str(),
                                 Stages[static_cast<size_t>(Prod)].Name.c_str(),
                                 S.Name.c_str()))
            .note("stage", S.Name)
            .note("array", Info.Name);
    }
    for (const StageInput &In : S.Inputs) {
      const ArrayInfo &Info = Arrays[checkArray(In.Array)];
      StageId Prod = Producer[static_cast<size_t>(In.Array)];
      if (Info.Role != ArrayRole::StepInput &&
          (Prod == NoStage || Prod >= static_cast<StageId>(SI)))
        Diags
            .report(Severity::Error, "program.stage.read-before-produced",
                    formatString("stage '%s' reads '%s' before it is produced "
                                 "(topological order violated)",
                                 S.Name.c_str(), Info.Name.c_str()))
            .note("stage", S.Name)
            .note("array", Info.Name);
      for (ArrayId Out : S.Outputs)
        if (Out == In.Array)
          Diags
              .report(Severity::Error, "program.stage.read-write-overlap",
                      formatString("stage '%s' reads array '%s' that it also "
                                   "writes (pointwise kernels would be "
                                   "evaluation-order dependent)",
                                   S.Name.c_str(), Info.Name.c_str()))
              .note("stage", S.Name)
              .note("array", Info.Name);
      for (int D = 0; D != 3; ++D)
        if (In.MinOff[D] > In.MaxOff[D])
          Diags
              .report(Severity::Error, "program.input.inverted-window",
                      formatString("stage '%s': inverted offset window on "
                                   "'%s' (dimension %d: min %d > max %d)",
                                   S.Name.c_str(), Info.Name.c_str(), D,
                                   In.MinOff[D], In.MaxOff[D]))
              .note("stage", S.Name)
              .note("array", Info.Name);
    }
    if (S.FlopsPerPoint < 0)
      Diags
          .report(Severity::Error, "program.stage.negative-flops",
                  formatString("stage '%s' has negative flop count",
                               S.Name.c_str()))
          .note("stage", S.Name);
  }
  for (size_t A = 0; A != Arrays.size(); ++A) {
    const ArrayInfo &Info = Arrays[A];
    bool Produced = Producer[A] != NoStage;
    if (Info.Role == ArrayRole::StepOutput && !Produced)
      Diags
          .report(Severity::Error, "program.output.never-produced",
                  formatString("step output '%s' is never produced",
                               Info.Name.c_str()))
          .note("array", Info.Name);
  }
  for (size_t RI = 0; RI != Reductions.size(); ++RI) {
    const ReductionDef &R = Reductions[RI];
    const ArrayInfo &Info = Arrays[checkArray(R.Array)];
    if (R.Name.empty())
      Diags
          .report(Severity::Error, "program.reduction.empty-name",
                  formatString("reduction over '%s' has an empty name",
                               Info.Name.c_str()))
          .note("array", Info.Name);
    if (Info.Role != ArrayRole::StepOutput)
      Diags
          .report(Severity::Error, "program.reduction.role-mismatch",
                  formatString("reduction '%s' folds array '%s', which is "
                               "not a step output",
                               R.Name.c_str(), Info.Name.c_str()))
          .note("reduction", R.Name)
          .note("array", Info.Name);
    for (size_t RJ = 0; RJ != RI; ++RJ)
      if (Reductions[RJ].Name == R.Name)
        Diags
            .report(Severity::Error, "program.reduction.duplicate-name",
                    formatString("reduction name '%s' is declared twice",
                                 R.Name.c_str()))
            .note("reduction", R.Name);
  }
  for (const FeedbackPair &FB : Feedbacks) {
    if (Arrays[checkArray(FB.Source)].Role != ArrayRole::StepOutput ||
        Arrays[checkArray(FB.Target)].Role != ArrayRole::StepInput)
      Diags
          .report(
              Severity::Error, "program.feedback.role-mismatch",
              formatString("feedback '%s' -> '%s' must connect a step "
                           "output to a step input",
                           Arrays[static_cast<size_t>(FB.Source)].Name.c_str(),
                           Arrays[static_cast<size_t>(FB.Target)].Name.c_str()))
          .note("source", Arrays[static_cast<size_t>(FB.Source)].Name)
          .note("target", Arrays[static_cast<size_t>(FB.Target)].Name);
  }
  return Diags.numErrors() == ErrorsBefore;
}
