//===- stencil/StencilIR.cpp - Heterogeneous stencil program IR ----------===//

#include "stencil/StencilIR.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace icores;

size_t StencilProgram::checkArray(ArrayId Id) const {
  ICORES_CHECK(Id >= 0 && static_cast<size_t>(Id) < Arrays.size(),
               "array id out of range");
  return static_cast<size_t>(Id);
}

size_t StencilProgram::checkStage(StageId Id) const {
  ICORES_CHECK(Id >= 0 && static_cast<size_t>(Id) < Stages.size(),
               "stage id out of range");
  return static_cast<size_t>(Id);
}

ArrayId StencilProgram::addArray(std::string Name, ArrayRole Role) {
  ArrayInfo Info;
  Info.Name = std::move(Name);
  Info.Role = Role;
  Arrays.push_back(std::move(Info));
  Producer.push_back(NoStage);
  return static_cast<ArrayId>(Arrays.size() - 1);
}

StageId StencilProgram::addStage(StageDef Def) {
  StageId Id = static_cast<StageId>(Stages.size());
  for (ArrayId Out : Def.Outputs) {
    checkArray(Out);
    ICORES_CHECK(Producer[static_cast<size_t>(Out)] == NoStage,
                 "array already has a producing stage");
    Producer[static_cast<size_t>(Out)] = Id;
  }
  Stages.push_back(std::move(Def));
  return Id;
}

void StencilProgram::addFeedback(ArrayId Source, ArrayId Target) {
  checkArray(Source);
  checkArray(Target);
  Feedbacks.push_back({Source, Target});
}

std::vector<ArrayId> StencilProgram::stepInputs() const {
  std::vector<ArrayId> Result;
  for (size_t A = 0; A != Arrays.size(); ++A)
    if (Arrays[A].Role == ArrayRole::StepInput)
      Result.push_back(static_cast<ArrayId>(A));
  return Result;
}

std::vector<ArrayId> StencilProgram::stepOutputs() const {
  std::vector<ArrayId> Result;
  for (size_t A = 0; A != Arrays.size(); ++A)
    if (Arrays[A].Role == ArrayRole::StepOutput)
      Result.push_back(static_cast<ArrayId>(A));
  return Result;
}

int64_t StencilProgram::totalFlopsPerPoint() const {
  int64_t Total = 0;
  for (const StageDef &S : Stages)
    Total += S.FlopsPerPoint;
  return Total;
}

bool StencilProgram::validate(std::string &Error) const {
  for (size_t SI = 0; SI != Stages.size(); ++SI) {
    const StageDef &S = Stages[SI];
    if (S.Outputs.empty()) {
      Error = formatString("stage '%s' has no outputs", S.Name.c_str());
      return false;
    }
    for (ArrayId Out : S.Outputs) {
      const ArrayInfo &Info = Arrays[checkArray(Out)];
      if (Info.Role == ArrayRole::StepInput) {
        Error = formatString("stage '%s' writes step input '%s'",
                             S.Name.c_str(), Info.Name.c_str());
        return false;
      }
    }
    for (const StageInput &In : S.Inputs) {
      const ArrayInfo &Info = Arrays[checkArray(In.Array)];
      StageId Prod = Producer[static_cast<size_t>(In.Array)];
      if (Info.Role != ArrayRole::StepInput &&
          (Prod == NoStage || Prod >= static_cast<StageId>(SI))) {
        Error = formatString(
            "stage '%s' reads '%s' before it is produced (topological "
            "order violated)",
            S.Name.c_str(), Info.Name.c_str());
        return false;
      }
      for (int D = 0; D != 3; ++D) {
        if (In.MinOff[D] > In.MaxOff[D]) {
          Error = formatString("stage '%s': inverted offset window on '%s'",
                               S.Name.c_str(), Info.Name.c_str());
          return false;
        }
      }
    }
    if (S.FlopsPerPoint < 0) {
      Error = formatString("stage '%s' has negative flop count",
                           S.Name.c_str());
      return false;
    }
  }
  for (size_t A = 0; A != Arrays.size(); ++A) {
    const ArrayInfo &Info = Arrays[A];
    bool Produced = Producer[A] != NoStage;
    if (Info.Role == ArrayRole::StepOutput && !Produced) {
      Error =
          formatString("step output '%s' is never produced", Info.Name.c_str());
      return false;
    }
  }
  for (const FeedbackPair &FB : Feedbacks) {
    if (Arrays[checkArray(FB.Source)].Role != ArrayRole::StepOutput ||
        Arrays[checkArray(FB.Target)].Role != ArrayRole::StepInput) {
      Error = formatString("feedback '%s' -> '%s' must connect a step "
                           "output to a step input",
                           Arrays[static_cast<size_t>(FB.Source)].Name.c_str(),
                           Arrays[static_cast<size_t>(FB.Target)].Name.c_str());
      return false;
    }
  }
  return true;
}
