//===- stencil/WorkloadRegistry.cpp - Multi-workload registry -------------===//

#include "stencil/WorkloadRegistry.h"

#include "stencil/HaloAnalysis.h"
#include "support/Diagnostics.h"
#include "support/Format.h"

#include <algorithm>
#include <utility>

using namespace icores;

bool WorkloadRegistry::add(WorkloadSpec Spec, DiagnosticEngine &Diags) {
  size_t ErrorsBefore = Diags.numErrors();

  if (Spec.Name.empty())
    Diags.report(Severity::Error, "registry.name.empty",
                 "workload has an empty name");
  else if (find(Spec.Name))
    Diags
        .report(Severity::Error, "registry.duplicate-name",
                formatString("workload '%s' is already registered",
                             Spec.Name.c_str()))
        .note("workload", Spec.Name);

  // The program's own structural invariants first: the registry checks
  // below assume a well-formed stage chain.
  const bool ProgramOk = Spec.Program.validate(Diags);

  if (ProgramOk) {
    // Declared-halo consistency: the deepest per-dimension input window
    // of the whole dependence cone must fit in the halo the workload says
    // its domains carry, or kernels would read unfilled cells. The cone
    // margins are offset sums, independent of the probe target's size.
    std::array<int, 3> Depth =
        inputHaloDepth(Spec.Program, Box3::fromExtents(8, 8, 8));
    for (int D = 0; D != 3; ++D)
      if (Depth[D] > Spec.HaloDepth)
        Diags
            .report(Severity::Error, "registry.halo.window-exceeds-declared",
                    formatString(
                        "workload '%s': the program's dependence cone needs "
                        "a halo of %d along dimension %d but the workload "
                        "declares only %d",
                        Spec.Name.c_str(), Depth[D], D, Spec.HaloDepth))
            .note("workload", Spec.Name)
            .note("dimension", formatString("%d", D))
            .note("needed", formatString("%d", Depth[D]))
            .note("declared", formatString("%d", Spec.HaloDepth));

    // Reduction contract: every declared reduction needs a callable
    // combiner, and every binding must name a declared reduction.
    for (const ReductionDef &Def : Spec.Program.reductions()) {
      const ReductionBinding *Found = nullptr;
      for (const ReductionBinding &B : Spec.Reductions)
        if (B.Name == Def.Name)
          Found = &B;
      if (!Found || !Found->Combine)
        Diags
            .report(Severity::Error, "registry.reduction.missing-combiner",
                    formatString("workload '%s': reduction '%s' is declared "
                                 "but has no callable combiner",
                                 Spec.Name.c_str(), Def.Name.c_str()))
            .note("workload", Spec.Name)
            .note("reduction", Def.Name);
    }
    for (const ReductionBinding &B : Spec.Reductions) {
      bool Declared = false;
      for (const ReductionDef &Def : Spec.Program.reductions())
        Declared = Declared || Def.Name == B.Name;
      if (!Declared)
        Diags
            .report(Severity::Error, "registry.reduction.unknown",
                    formatString("workload '%s': combiner '%s' matches no "
                                 "declared reduction",
                                 Spec.Name.c_str(), B.Name.c_str()))
            .note("workload", Spec.Name)
            .note("reduction", B.Name);
    }
  }

  if (Spec.Variants.empty())
    Diags
        .report(Severity::Error, "registry.variants.empty",
                formatString("workload '%s' advertises no kernel variants",
                             Spec.Name.c_str()))
        .note("workload", Spec.Name);
  if (!Spec.Kernels)
    Diags
        .report(Severity::Error, "registry.kernels.missing",
                formatString("workload '%s' has no kernel factory",
                             Spec.Name.c_str()))
        .note("workload", Spec.Name);
  else if (ProgramOk)
    for (KernelVariant V : Spec.Variants)
      if (!Spec.Kernels(V).coversProgram(Spec.Program))
        Diags
            .report(Severity::Error, "registry.kernels.incomplete",
                    formatString("workload '%s': the %s kernel table does "
                                 "not cover every program stage",
                                 Spec.Name.c_str(), kernelVariantName(V)))
            .note("workload", Spec.Name)
            .note("variant", kernelVariantName(V));

  if (!Spec.Init)
    Diags
        .report(Severity::Error, "registry.init.missing",
                formatString("workload '%s' has no seeded initial "
                             "conditions",
                             Spec.Name.c_str()))
        .note("workload", Spec.Name);

  if (Diags.numErrors() != ErrorsBefore)
    return false;
  Specs.push_back(std::move(Spec));
  return true;
}

const WorkloadSpec *WorkloadRegistry::find(const std::string &Name) const {
  for (const WorkloadSpec &Spec : Specs)
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> Names;
  Names.reserve(Specs.size());
  for (const WorkloadSpec &Spec : Specs)
    Names.push_back(Spec.Name);
  return Names;
}

Domain icores::workloadDomain(const WorkloadSpec &Spec, int NI, int NJ,
                              int NK, BoundaryMode Boundary) {
  return Domain(NI, NJ, NK, Spec.HaloDepth, Boundary);
}
