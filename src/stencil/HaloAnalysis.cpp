//===- stencil/HaloAnalysis.cpp - Backward dependence-cone analysis ------===//

#include "stencil/HaloAnalysis.h"

#include "support/Error.h"

#include <algorithm>

using namespace icores;

int64_t RegionRequirements::totalStagePoints() const {
  int64_t Total = 0;
  for (const Box3 &R : StageRegion)
    Total += R.numPoints();
  return Total;
}

RegionRequirements icores::computeRequirements(const StencilProgram &Program,
                                               const Box3 &Target) {
  RegionRequirements Req;
  Req.StageRegion.assign(Program.numStages(), Box3());
  Req.ArrayRegion.assign(Program.numArrays(), Box3());

  // Seed: all step outputs must be valid on the target region.
  for (ArrayId Out : Program.stepOutputs())
    Req.ArrayRegion[static_cast<size_t>(Out)] = Target;

  // Walk stages backward; the union of requirements on a stage's outputs is
  // the region the stage must be computed on, which in turn imposes read
  // requirements on its inputs.
  for (int S = static_cast<int>(Program.numStages()) - 1; S >= 0; --S) {
    const StageDef &Stage = Program.stage(S);
    Box3 Region;
    for (ArrayId Out : Stage.Outputs)
      Region = Region.unionWith(Req.ArrayRegion[static_cast<size_t>(Out)]);
    if (Region.empty())
      continue; // Stage result unused for this target.
    Req.StageRegion[static_cast<size_t>(S)] = Region;
    for (const StageInput &In : Stage.Inputs) {
      Box3 Read = In.readRegion(Region);
      Box3 &Cur = Req.ArrayRegion[static_cast<size_t>(In.Array)];
      Cur = Cur.unionWith(Read);
    }
  }
  return Req;
}

std::vector<Box3> icores::temporalStepTargets(const StencilProgram &Program,
                                              const Box3 &Part, int Depth) {
  ICORES_CHECK(Depth >= 1, "temporal depth must be at least 1");
  std::vector<Box3> Tgt(static_cast<size_t>(Depth));
  Tgt[static_cast<size_t>(Depth - 1)] = Part;
  for (int T = Depth - 1; T > 0; --T) {
    const Box3 &Cur = Tgt[static_cast<size_t>(T)];
    RegionRequirements Req = computeRequirements(Program, Cur);
    Box3 Prev = Cur;
    for (const FeedbackPair &FB : Program.feedbacks())
      Prev = Prev.unionWith(
          Req.ArrayRegion[static_cast<size_t>(FB.Target)]);
    Tgt[static_cast<size_t>(T - 1)] = Prev;
  }
  return Tgt;
}

std::array<int, 3> icores::inputHaloDepth(const StencilProgram &Program,
                                          const Box3 &Target) {
  ICORES_CHECK(!Target.empty(), "halo depth of an empty target");
  RegionRequirements Req = computeRequirements(Program, Target);
  std::array<int, 3> Depth = {0, 0, 0};
  for (ArrayId In : Program.stepInputs()) {
    const Box3 &R = Req.ArrayRegion[static_cast<size_t>(In)];
    if (R.empty())
      continue;
    for (int D = 0; D != 3; ++D) {
      Depth[D] = std::max(Depth[D], Target.Lo[D] - R.Lo[D]);
      Depth[D] = std::max(Depth[D], R.Hi[D] - Target.Hi[D]);
    }
  }
  return Depth;
}

std::vector<StageSideMargins>
icores::stageSideMargins(const StencilProgram &Program) {
  // Probe with a target comfortably larger than any dependence cone so the
  // margins are independent of the probe size.
  Box3 Target = Box3::fromExtents(64, 64, 64);
  RegionRequirements Req = computeRequirements(Program, Target);
  std::vector<StageSideMargins> Margins(Program.numStages());
  for (unsigned S = 0; S != Program.numStages(); ++S) {
    const Box3 &R = Req.StageRegion[S];
    if (R.empty())
      continue;
    for (int D = 0; D != 3; ++D) {
      Margins[S].Lo[D] = Target.Lo[D] - R.Lo[D];
      Margins[S].Hi[D] = R.Hi[D] - Target.Hi[D];
    }
  }
  return Margins;
}

std::vector<int> icores::stageMargins(const StencilProgram &Program, int Dim) {
  ICORES_CHECK(Dim >= 0 && Dim < 3, "dimension out of range");
  // Use a reference target comfortably larger than any stencil reach so the
  // margins are target-independent.
  Box3 Target = Box3::fromExtents(64, 64, 64);
  RegionRequirements Req = computeRequirements(Program, Target);
  std::vector<int> Margins(Program.numStages(), 0);
  for (unsigned S = 0; S != Program.numStages(); ++S) {
    const Box3 &R = Req.StageRegion[S];
    if (R.empty())
      continue;
    Margins[S] = (Target.Lo[Dim] - R.Lo[Dim]) + (R.Hi[Dim] - Target.Hi[Dim]);
  }
  return Margins;
}
