//===- stencil/SerialStepper.cpp - Generic serial time stepping -----------===//

#include "stencil/SerialStepper.h"

#include "support/Error.h"

#include <utility>

using namespace icores;

SerialStepper::SerialStepper(StencilProgram AProgram, KernelTable AKernels,
                             const Domain &ADom)
    : Program(std::move(AProgram)), Kernels(std::move(AKernels)), Dom(ADom),
      Req(computeRequirements(Program, Dom.coreBox())),
      Fields(Program.numArrays()) {
  ICORES_CHECK(Kernels.coversProgram(Program),
               "kernel table does not cover the program");
  std::array<int, 3> Depth = inputHaloDepth(Program, Dom.coreBox());
  for (int D = 0; D != 3; ++D)
    ICORES_CHECK(Depth[D] <= Dom.haloDepth(),
                 "domain halo shallower than the program's cone");

  Box3 Alloc = Dom.allocBox();
  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    ArrayId Id = static_cast<ArrayId>(A);
    if (Program.array(Id).Role == ArrayRole::Intermediate) {
      Fields.allocateOwned(Id, Alloc);
    } else {
      External.emplace(Id, Array3D(Alloc));
      Fields.bindExternal(Id, &External.at(Id));
    }
  }
}

Array3D &SerialStepper::array(ArrayId Id) {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

const Array3D &SerialStepper::array(ArrayId Id) const {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

void SerialStepper::prepareInputs() {
  for (ArrayId In : Program.stepInputs())
    Dom.fillHalo(array(In));
}

void SerialStepper::step() {
  for (const FeedbackPair &FB : Program.feedbacks())
    Dom.fillHalo(array(FB.Target));
  for (unsigned S = 0; S != Program.numStages(); ++S)
    Kernels.run(Fields, static_cast<StageId>(S), Req.StageRegion[S]);
  for (const FeedbackPair &FB : Program.feedbacks())
    std::swap(array(FB.Source), array(FB.Target));
}

void SerialStepper::run(int Steps) {
  ICORES_CHECK(Steps >= 0, "negative step count");
  for (int S = 0; S != Steps; ++S)
    step();
}
