//===- stencil/SerialStepper.cpp - Generic serial time stepping -----------===//

#include "stencil/SerialStepper.h"

#include "support/Error.h"

#include <utility>

using namespace icores;

SerialStepper::SerialStepper(StencilProgram AProgram, KernelTable AKernels,
                             const Domain &ADom,
                             std::vector<ReductionBinding> AReductions)
    : Program(std::move(AProgram)), Kernels(std::move(AKernels)), Dom(ADom),
      Req(computeRequirements(Program, Dom.coreBox())),
      Fields(Program.numArrays()) {
  Reductions = orderedReductionBindings(Program, std::move(AReductions));
  ReductionLog.resize(Reductions.size());
  ICORES_CHECK(Kernels.coversProgram(Program),
               "kernel table does not cover the program");
  std::array<int, 3> Depth = inputHaloDepth(Program, Dom.coreBox());
  for (int D = 0; D != 3; ++D)
    ICORES_CHECK(Depth[D] <= Dom.haloDepth(),
                 "domain halo shallower than the program's cone");

  Box3 Alloc = Dom.allocBox();
  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    ArrayId Id = static_cast<ArrayId>(A);
    if (Program.array(Id).Role == ArrayRole::Intermediate) {
      Fields.allocateOwned(Id, Alloc);
    } else {
      External.emplace(Id, Array3D(Alloc));
      Fields.bindExternal(Id, &External.at(Id));
    }
  }
}

Array3D &SerialStepper::array(ArrayId Id) {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

const Array3D &SerialStepper::array(ArrayId Id) const {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

void SerialStepper::prepareInputs() {
  for (ArrayId In : Program.stepInputs())
    Dom.fillHalo(array(In));
}

void SerialStepper::step() {
  for (const FeedbackPair &FB : Program.feedbacks())
    Dom.fillHalo(array(FB.Target));
  for (unsigned S = 0; S != Program.numStages(); ++S)
    Kernels.run(Fields, static_cast<StageId>(S), Req.StageRegion[S]);
  // Fold the freshly produced outputs before the feedback swap: the
  // canonical i,j,k core scan is the reduction oracle every threaded
  // schedule must reproduce bit for bit.
  for (size_t R = 0; R != Reductions.size(); ++R) {
    const Array3D &Arr = array(Program.reductions()[R].Array);
    const Box3 Core = Dom.coreBox();
    double V = Reductions[R].Identity;
    for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
      for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
        for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
          V = Reductions[R].Combine(V, Arr.at(I, J, K));
    ReductionLog[R].push_back(V);
  }
  for (const FeedbackPair &FB : Program.feedbacks())
    std::swap(array(FB.Source), array(FB.Target));
}

const std::vector<double> &SerialStepper::reductionHistory(size_t R) const {
  ICORES_CHECK(R < ReductionLog.size(), "reduction index out of range");
  return ReductionLog[R];
}

void SerialStepper::run(int Steps) {
  ICORES_CHECK(Steps >= 0, "negative step count");
  for (int S = 0; S != Steps; ++S)
    step();
}
