//===- stencil/SerialStepper.h - Generic serial time stepping ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Application-agnostic serial time stepping for any (StencilProgram,
/// KernelTable) pair: every stage is evaluated over its exact global
/// dependence-cone region, halos are refreshed per the domain's boundary
/// mode, and the program's feedback pairs advance the state between steps.
/// This is the generic counterpart of mpdata::ReferenceSolver and the
/// correctness oracle for new applications built on the library.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_SERIALSTEPPER_H
#define ICORES_STENCIL_SERIALSTEPPER_H

#include "grid/Array3D.h"
#include "grid/Domain.h"
#include "stencil/FieldStore.h"
#include "stencil/HaloAnalysis.h"
#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"

#include <map>

namespace icores {

/// Serial stage-by-stage runner for one program over one domain.
class SerialStepper {
public:
  /// The domain's halo depth must cover the program's input halo (checked).
  /// When the program declares reductions, \p Reductions must bind a
  /// combiner for each of them (by name, checked).
  SerialStepper(StencilProgram Program, KernelTable Kernels,
                const Domain &Dom,
                std::vector<ReductionBinding> Reductions = {});

  const Domain &domain() const { return Dom; }
  const StencilProgram &program() const { return Program; }

  /// Mutable access to any step-input or step-output array (write core
  /// values before running; halos are managed internally).
  Array3D &array(ArrayId Id);
  const Array3D &array(ArrayId Id) const;

  /// Refreshes the halos of every step input. Call once after
  /// initialization; feedback targets are re-refreshed every step.
  void prepareInputs();

  /// Advances \p Steps steps. Afterwards each feedback Target array holds
  /// the newest state.
  void run(int Steps);

  /// Per-step values of the program's \p R-th reduction (one entry per
  /// step run so far), folded over the domain core in canonical i,j,k
  /// order — the oracle every threaded schedule must match bit for bit.
  const std::vector<double> &reductionHistory(size_t R) const;

private:
  void step();

  StencilProgram Program;
  KernelTable Kernels;
  Domain Dom;
  RegionRequirements Req;
  FieldStore Fields;
  std::map<ArrayId, Array3D> External; ///< Step inputs and outputs.
  /// Combiners in ReductionDef order, resolved by name at construction.
  std::vector<ReductionBinding> Reductions;
  std::vector<std::vector<double>> ReductionLog; ///< Per reduction.
};

} // namespace icores

#endif // ICORES_STENCIL_SERIALSTEPPER_H
