//===- stencil/FieldStore.cpp - Array storage for a stencil program -------===//

#include "stencil/FieldStore.h"

#include "support/Error.h"

using namespace icores;

FieldStore::Slot &FieldStore::slot(ArrayId Id) {
  ICORES_CHECK(Id >= 0 && static_cast<size_t>(Id) < Slots.size(),
               "field store id out of range");
  return Slots[static_cast<size_t>(Id)];
}

const FieldStore::Slot &FieldStore::slot(ArrayId Id) const {
  ICORES_CHECK(Id >= 0 && static_cast<size_t>(Id) < Slots.size(),
               "field store id out of range");
  return Slots[static_cast<size_t>(Id)];
}

void FieldStore::allocateOwned(ArrayId Id, const Box3 &IndexSpace,
                               int PadK) {
  Slot &S = slot(Id);
  ICORES_CHECK(S.Ptr == nullptr, "field store slot already populated");
  S.Owned = std::make_unique<Array3D>(IndexSpace, PadK);
  S.Ptr = S.Owned.get();
}

void FieldStore::allocateOwnedUntouched(ArrayId Id, const Box3 &IndexSpace,
                                        int PadK) {
  Slot &S = slot(Id);
  ICORES_CHECK(S.Ptr == nullptr, "field store slot already populated");
  S.Owned = std::make_unique<Array3D>();
  S.Owned->resetUntouched(IndexSpace, PadK);
  S.Ptr = S.Owned.get();
}

void FieldStore::bindExternal(ArrayId Id, Array3D *External) {
  ICORES_CHECK(External != nullptr, "binding null external array");
  Slot &S = slot(Id);
  ICORES_CHECK(S.Ptr == nullptr, "field store slot already populated");
  S.Ptr = External;
}

void FieldStore::rebindExternal(ArrayId Id, Array3D *External) {
  ICORES_CHECK(External != nullptr, "rebinding to null external array");
  Slot &S = slot(Id);
  ICORES_CHECK(S.Ptr != nullptr && S.Owned == nullptr,
               "rebinding a slot that is not externally bound");
  S.Ptr = External;
}

Array3D &FieldStore::get(ArrayId Id) {
  Slot &S = slot(Id);
  ICORES_CHECK(S.Ptr != nullptr, "field store slot not populated");
  return *S.Ptr;
}

const Array3D &FieldStore::get(ArrayId Id) const {
  const Slot &S = slot(Id);
  ICORES_CHECK(S.Ptr != nullptr, "field store slot not populated");
  return *S.Ptr;
}

int64_t FieldStore::ownedBytes() const {
  int64_t Total = 0;
  for (const Slot &S : Slots)
    if (S.Owned)
      Total += S.Owned->sizeInBytes();
  return Total;
}
