//===- stencil/KernelTable.cpp - Per-stage compute callbacks --------------===//

#include "stencil/KernelTable.h"

#include "support/Error.h"

using namespace icores;

const char *icores::kernelVariantName(KernelVariant Variant) {
  switch (Variant) {
  case KernelVariant::Reference:
    return "ref";
  case KernelVariant::Optimized:
    return "opt";
  case KernelVariant::Simd:
    return "simd";
  }
  return "ref";
}

bool icores::parseKernelVariant(const std::string &Name,
                                KernelVariant &Variant) {
  if (Name == "ref") {
    Variant = KernelVariant::Reference;
    return true;
  }
  if (Name == "opt") {
    Variant = KernelVariant::Optimized;
    return true;
  }
  if (Name == "simd") {
    Variant = KernelVariant::Simd;
    return true;
  }
  return false;
}

void KernelTable::set(StageId Stage, StageKernel Kernel) {
  ICORES_CHECK(Stage >= 0 &&
                   static_cast<size_t>(Stage) < Kernels.size(),
               "stage id out of range for this kernel table");
  ICORES_CHECK(static_cast<bool>(Kernel), "registering an empty kernel");
  Kernels[static_cast<size_t>(Stage)] = std::move(Kernel);
}

bool KernelTable::isSet(StageId Stage) const {
  return Stage >= 0 && static_cast<size_t>(Stage) < Kernels.size() &&
         static_cast<bool>(Kernels[static_cast<size_t>(Stage)]);
}

void KernelTable::run(FieldStore &Fields, StageId Stage,
                      const Box3 &Region) const {
  if (Region.empty())
    return;
  ICORES_CHECK(isSet(Stage), "no kernel registered for this stage");
  Kernels[static_cast<size_t>(Stage)](Fields, Region);
}

bool KernelTable::coversProgram(const StencilProgram &Program) const {
  if (numStages() != Program.numStages())
    return false;
  for (unsigned S = 0; S != Program.numStages(); ++S)
    if (!isSet(static_cast<StageId>(S)))
      return false;
  return true;
}
