//===- stencil/HaloAnalysis.h - Backward dependence-cone analysis -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward dataflow over a StencilProgram: given a target region of the
/// step outputs, compute the exact region each stage must be evaluated on
/// and the region of every step-input array that is read. This is the
/// analytical core of the islands-of-cores transformation — an island
/// assigned part B of the domain evaluates stage s over StageRegion(B)[s],
/// which provably replaces all inter-island halo exchanges by redundant
/// computation (scenario 2 of the paper's Fig. 1).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_HALOANALYSIS_H
#define ICORES_STENCIL_HALOANALYSIS_H

#include "grid/Box3.h"
#include "stencil/StencilIR.h"

#include <vector>

namespace icores {

/// Result of the backward cone analysis for one target region.
struct RegionRequirements {
  /// Region over which each stage must be computed (indexed by StageId).
  /// Empty when the stage's outputs are not needed for the target.
  std::vector<Box3> StageRegion;

  /// Region of each array that must hold valid values (indexed by ArrayId).
  /// For step inputs this is the read region including halo; for produced
  /// arrays it equals the producing stage's region.
  std::vector<Box3> ArrayRegion;

  /// Total points computed, summed over all stages.
  int64_t totalStagePoints() const;
};

/// Runs the backward analysis: the step outputs are required on \p Target.
RegionRequirements computeRequirements(const StencilProgram &Program,
                                       const Box3 &Target);

/// Per-step target regions for a temporally blocked epoch of \p Depth
/// fused time steps whose *final* step must finish exactly on \p Part.
/// Element t is the region the step outputs must be computed on during
/// fused step t (t == Depth-1 returns \p Part itself). The recursion runs
/// the one-step cone backward through the program's feedback pairs:
///
///   Tgt[Depth-1] = Part
///   Tgt[t-1]     = Tgt[t]  ∪  ⋃_FB computeRequirements(Tgt[t])
///                                     .ArrayRegion[FB.Target]
///
/// The explicit union with Tgt[t] forces the targets to nest
/// (Tgt[0] ⊇ Tgt[1] ⊇ ... ⊇ Part), so one import of the step inputs over
/// the cone of Tgt[0] covers every fused step. Depth == 1 returns {Part}.
std::vector<Box3> temporalStepTargets(const StencilProgram &Program,
                                      const Box3 &Part, int Depth);

/// Maximum halo depth (per dimension) any step input is read at, relative
/// to \p Target. Arrays must be allocated with at least this margin.
std::array<int, 3> inputHaloDepth(const StencilProgram &Program,
                                  const Box3 &Target);

/// Per-stage margin: how far stage regions extend beyond \p Target in
/// dimension \p Dim, summed over both sides. This is the "extra planes"
/// count driving Table 2's per-boundary overhead.
std::vector<int> stageMargins(const StencilProgram &Program, int Dim);

/// Per-side dependence-cone margins of one stage relative to the target
/// region: the stage must be computed Lo[d] cells below and Hi[d] cells
/// above the target in dimension d.
struct StageSideMargins {
  std::array<int, 3> Lo = {0, 0, 0};
  std::array<int, 3> Hi = {0, 0, 0};
};

/// Per-stage side margins (target-independent). Stages whose outputs are
/// unused report zero margins.
std::vector<StageSideMargins> stageSideMargins(const StencilProgram &Program);

} // namespace icores

#endif // ICORES_STENCIL_HALOANALYSIS_H
