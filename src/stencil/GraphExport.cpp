//===- stencil/GraphExport.cpp - Stage-graph visualization ----------------===//

#include "stencil/GraphExport.h"

#include "support/Format.h"
#include "support/OStream.h"

using namespace icores;

namespace {

/// "[-1..0, 0, -1..1]"-style rendering of an offset window; empty string
/// for a pure centre access.
std::string windowLabel(const StageInput &In) {
  bool Center = true;
  for (int D = 0; D != 3; ++D)
    if (In.MinOff[D] != 0 || In.MaxOff[D] != 0)
      Center = false;
  if (Center)
    return std::string();
  std::string Label = "[";
  for (int D = 0; D != 3; ++D) {
    if (D)
      Label += ", ";
    if (In.MinOff[D] == In.MaxOff[D])
      Label += formatString("%d", In.MinOff[D]);
    else
      Label += formatString("%d..%d", In.MinOff[D], In.MaxOff[D]);
  }
  Label += "]";
  return Label;
}

} // namespace

void icores::exportProgramDot(const StencilProgram &Program, OStream &OS) {
  OS << "digraph stencil_program {\n";
  OS << "  rankdir=TB;\n";
  OS << "  node [fontname=\"Helvetica\"];\n";
  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    const ArrayInfo &Info = Program.array(static_cast<ArrayId>(A));
    const char *Color = Info.Role == ArrayRole::StepInput     ? "lightblue"
                        : Info.Role == ArrayRole::StepOutput ? "lightgreen"
                                                             : "white";
    OS << "  a" << A << " [label=\"" << Info.Name
       << "\", shape=ellipse, style=filled, fillcolor=" << Color << "];\n";
  }
  for (unsigned S = 0; S != Program.numStages(); ++S) {
    const StageDef &Stage = Program.stage(static_cast<StageId>(S));
    OS << "  s" << S << " [label=\"" << (S + 1) << ": " << Stage.Name
       << "\\n" << Stage.FlopsPerPoint << " flop/pt\", shape=box];\n";
    for (const StageInput &In : Stage.Inputs) {
      OS << "  a" << In.Array << " -> s" << S;
      std::string Label = windowLabel(In);
      if (!Label.empty())
        OS << " [label=\"" << Label << "\"]";
      OS << ";\n";
    }
    for (ArrayId Out : Stage.Outputs)
      OS << "  s" << S << " -> a" << Out << ";\n";
  }
  OS << "}\n";
}

void icores::exportProgramText(const StencilProgram &Program, OStream &OS) {
  for (unsigned S = 0; S != Program.numStages(); ++S) {
    const StageDef &Stage = Program.stage(static_cast<StageId>(S));
    OS << "S" << (S + 1) << ' ' << Stage.Name << " (";
    OS << Stage.FlopsPerPoint << " flop/pt): reads";
    for (const StageInput &In : Stage.Inputs) {
      OS << ' ' << Program.array(In.Array).Name;
      std::string Label = windowLabel(In);
      if (!Label.empty())
        OS << Label;
    }
    OS << " -> writes";
    for (ArrayId Out : Stage.Outputs)
      OS << ' ' << Program.array(Out).Name;
    OS << '\n';
  }
}
