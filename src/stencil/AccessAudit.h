//===- stencil/AccessAudit.h - Kernel access-footprint auditor --*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic-probing audit of the per-stage access windows declared in the
/// stencil IR. The declared StageInput windows are the single source of
/// truth for HaloAnalysis: an under-declared window makes the island
/// dependence cones unsound (silent corruption at island boundaries), an
/// over-declared one inflates the redundant-computation overhead budgeted
/// by the paper's Table 2. The audit runs each kernel over a small probe
/// region and derives the kernel's *actual* footprint:
///
///  - writes: every array is pre-filled with per-cell random values and
///    diffed after the run — any changed cell is a write. Changed cells in
///    non-output arrays or outside the stage region are errors.
///  - reads: each candidate input cell is perturbed (twice, with a large
///    positive and a large negative replacement, so min/max and
///    sign-dependent donor-cell selections flip) and the kernel re-run; any
///    output change proves the cell is read, and (cell - output point)
///    contributes to the observed per-array offset hull.
///
/// The observed hull is compared per dimension against the declared
/// windows (the box hull when an array appears in several StageInputs).
/// This supersedes the NaN-poisoning property test in kernels_test.cpp:
/// perturbation probing catches over-declared windows and writes outside
/// the region, and a value-flipping probe survives min/max and
/// sign-selection paths that can mask NaN.
///
/// Limitations (documented, checked elsewhere): reads whose value never
/// affects any output are invisible to probing — except that the
/// instrumented AuditFieldStore still records which arrays the kernel
/// *fetches*, so touching an entirely undeclared array is flagged even
/// when its values are unused. Reads of an array the stage also writes are
/// rejected structurally by StencilProgram::validate.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_STENCIL_ACCESSAUDIT_H
#define ICORES_STENCIL_ACCESSAUDIT_H

#include "grid/Box3.h"
#include "stencil/FieldStore.h"
#include "stencil/StencilIR.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace icores {

class DiagnosticEngine;
class KernelTable;

/// FieldStore recording which arrays are fetched through get(). Kernels
/// fetch each array they touch exactly once per invocation, so the fetch
/// set is the array-level access footprint — independent of whether the
/// fetched values influence any output.
class AuditFieldStore : public FieldStore {
public:
  explicit AuditFieldStore(unsigned NumArrays)
      : FieldStore(NumArrays), FetchedFlags(NumArrays, 0) {}

  Array3D &get(ArrayId Id) override;
  const Array3D &get(ArrayId Id) const override;

  /// Clears the fetch record.
  void clearFetched();

  /// True when \p Id was fetched since the last clearFetched().
  bool wasFetched(ArrayId Id) const;

private:
  mutable std::vector<char> FetchedFlags;
};

/// Tuning knobs of the audit. The defaults keep a full 17-stage MPDATA
/// audit (both kernel variants) well under a second.
struct AccessAuditOptions {
  /// Output region the probed kernel is evaluated over. Deliberately
  /// asymmetric in every dimension and away from the origin so that
  /// transposed-dimension bugs cannot cancel out.
  Box3 ProbeRegion = Box3(2, 3, 4, 5, 7, 7);

  /// How far beyond the declared read window under-declared reads are
  /// probed for (arrays are allocated with this much extra margin).
  int SlackRadius = 2;

  /// Independent random re-fills; conditional access paths (donor-cell
  /// upwind selection, min/max chains) are exercised across trials.
  int Trials = 3;

  /// Base PRNG seed (trial t uses Seed + t).
  uint64_t Seed = 0x1c07e5a0d17ULL;
};

/// Observed-vs-declared footprint of one stage (exposed for tests; the
/// finding emission in auditStageAccess is derived from this).
struct StageAccessFootprint {
  struct ReadWindow {
    bool Declared = false; ///< Array appears in the stage's Inputs.
    bool Observed = false; ///< Some probe of this array changed an output.
    std::array<int, 3> DeclMin = {0, 0, 0}, DeclMax = {0, 0, 0};
    std::array<int, 3> ObsMin = {0, 0, 0}, ObsMax = {0, 0, 0};
  };

  StageId Stage = 0;
  /// Per-array read windows (indexed by ArrayId).
  std::vector<ReadWindow> Reads;
  /// Arrays the kernel fetched through the store (indexed by ArrayId).
  std::vector<char> Fetched;
  /// Cells changed in arrays outside the stage's Outputs (per ArrayId).
  std::vector<int64_t> UndeclaredWritePoints;
  /// Cells of declared outputs changed outside the probe region.
  std::vector<int64_t> OutsideWritePoints;
  /// Cells of declared outputs inside the probe region left unwritten in
  /// every trial.
  std::vector<int64_t> UncoveredPoints;
};

/// Probes stage \p Stage of \p Program / \p Kernels and returns the
/// observed footprint without reporting findings.
StageAccessFootprint
probeStageAccess(const StencilProgram &Program, const KernelTable &Kernels,
                 StageId Stage, const AccessAuditOptions &Opts = {});

/// Probes one stage and reports `access.*` findings into \p Diags.
/// \p Label distinguishes kernel variants in the findings ("ref"/"opt").
/// Returns true when the stage produced no error-severity finding.
bool auditStageAccess(const StencilProgram &Program, const KernelTable &Kernels,
                      StageId Stage, DiagnosticEngine &Diags,
                      const AccessAuditOptions &Opts = {},
                      const std::string &Label = std::string());

/// Audits every stage of the program. Returns true when error-free.
bool auditProgramAccess(const StencilProgram &Program,
                        const KernelTable &Kernels, DiagnosticEngine &Diags,
                        const AccessAuditOptions &Opts = {},
                        const std::string &Label = std::string());

} // namespace icores

#endif // ICORES_STENCIL_ACCESSAUDIT_H
