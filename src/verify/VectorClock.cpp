//===- verify/VectorClock.cpp - Happens-before vector clocks --------------===//

#include "verify/VectorClock.h"

#include <algorithm>

using namespace icores;

void VectorClock::ensureSize(int NumWorkers) {
  if (static_cast<size_t>(NumWorkers) > Ticks.size())
    Ticks.resize(static_cast<size_t>(NumWorkers), 0);
}

uint64_t VectorClock::get(int Worker) const {
  size_t W = static_cast<size_t>(Worker);
  return W < Ticks.size() ? Ticks[W] : 0;
}

void VectorClock::set(int Worker, uint64_t Value) {
  ensureSize(Worker + 1);
  Ticks[static_cast<size_t>(Worker)] = Value;
}

void VectorClock::merge(const VectorClock &Other) {
  ensureSize(Other.size());
  for (size_t W = 0; W != Other.Ticks.size(); ++W)
    Ticks[W] = std::max(Ticks[W], Other.Ticks[W]);
}
