//===- verify/PlanSpace.cpp - Reachable plan-space enumeration ------------===//

#include "verify/PlanSpace.h"

#include "apps/Workloads.h"
#include "core/Partition.h"
#include "core/PlanBuilder.h"
#include "core/ScheduleOptimizer.h"
#include "stencil/HaloAnalysis.h"
#include "stencil/WorkloadRegistry.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>

using namespace icores;

MachineModel icores::planSpaceMachine(int Teams) {
  MachineModel M = makeToyMachine();
  M.Name = formatString("plan-space toy (%d sockets x %d cores)", Teams,
                        M.CoresPerSocket);
  M.NumSockets = Teams;
  return M;
}

const char *icores::strategyKey(Strategy S) {
  switch (S) {
  case Strategy::Original:
    return "original";
  case Strategy::Block31D:
    return "block31d";
  case Strategy::IslandsOfCores:
    return "islands";
  }
  return "?";
}

namespace {

/// PlanAdvisor's temporal prune, mirrored verbatim: whole epochs only, and
/// the widened step-0 cone must not exceed 2x the grid per dimension.
std::string temporalPruneReason(const StencilProgram &Program,
                                const Box3 &Grid, int Depth, int TimeSteps) {
  if (TimeSteps % Depth != 0)
    return formatString("time steps %d not divisible by temporal depth %d",
                        TimeSteps, Depth);
  Box3 Widest = temporalStepTargets(Program, Grid, Depth).front();
  for (int D = 0; D != 3; ++D)
    if (Widest.extent(D) > 2 * Grid.extent(D))
      return formatString(
          "widened step-0 cone extent %d exceeds 2x grid extent %d "
          "along dim %d",
          Widest.extent(D), Grid.extent(D), D);
  return "";
}

/// PlanAdvisor's islands prune: enough planes along the partitioned
/// dimension for every island.
std::string islandsPruneReason(const Box3 &Grid, const PlanConfig &Config,
                               const MachineModel &Machine) {
  int Islands = Config.Sockets * Config.IslandsPerSocket;
  if (Islands > Grid.extent(partitionDim(Config.Variant)))
    return formatString("%d islands exceed the %d planes of the partition "
                        "dimension",
                        Islands, Grid.extent(partitionDim(Config.Variant)));
  if (Machine.CoresPerSocket % Config.IslandsPerSocket != 0)
    return "islands per socket does not divide the cores per socket";
  return "";
}

} // namespace

PlanSpaceEnumeration
icores::enumeratePlanSpace(const PlanSpaceOptions &Opts) {
  PlanSpaceEnumeration E;
  E.Opts = Opts;

  // The space covers the registry roster, not a hand-maintained list: a
  // workload registered in apps/Workloads.cpp is enumerated (and proved)
  // with no change here.
  for (const WorkloadSpec &Spec : builtinWorkloads().workloads()) {
    if (!Opts.Workloads.empty() &&
        std::find(Opts.Workloads.begin(), Opts.Workloads.end(), Spec.Name) ==
            Opts.Workloads.end())
      continue;
    PlanSpaceWorkload W;
    W.Name = Spec.Name;
    W.Program = Spec.Program;
    E.Workloads.push_back(std::move(W));
  }
  ICORES_CHECK(Opts.Workloads.empty() ||
                   E.Workloads.size() == Opts.Workloads.size(),
               "plan-space workload filter names an unregistered workload");
  ICORES_CHECK(!E.Workloads.empty(), "plan space has no workloads");

  const Box3 Grid = Box3::fromExtents(Opts.NI, Opts.NJ, Opts.NK);
  const Strategy Strategies[] = {Strategy::Original, Strategy::Block31D,
                                 Strategy::IslandsOfCores};

  for (size_t WI = 0; WI != E.Workloads.size(); ++WI) {
    const StencilProgram &Program = E.Workloads[WI].Program;
    for (Strategy Strat : Strategies)
      for (int Teams : Opts.TeamCounts)
        for (int Depth : Opts.TemporalDepths) {
          MachineModel Machine = planSpaceMachine(Teams);
          PlanConfig Config;
          Config.Strat = Strat;
          Config.Sockets = Teams;
          Config.TemporalDepth = Depth;

          std::string Prune =
              temporalPruneReason(Program, Grid, Depth, Opts.TimeSteps);
          if (Prune.empty() && Strat == Strategy::IslandsOfCores)
            Prune = islandsPruneReason(Grid, Config, Machine);

          ExecutionPlan Built;
          if (Prune.empty())
            Built = buildPlan(Program, Grid, Machine, Config);

          for (bool Elide : {false, true}) {
            EnumeratedPlan EP;
            EP.Point.WorkloadIndex = WI;
            EP.Point.Workload = E.Workloads[WI].Name;
            EP.Point.Strat = Strat;
            EP.Point.Teams = Teams;
            EP.Point.TemporalDepth = Depth;
            EP.Point.Elide = Elide;
            EP.Point.Label = formatString(
                "%s/%s/teams%d/T%d/%s", E.Workloads[WI].Name.c_str(),
                strategyKey(Strat), Teams, Depth,
                Elide ? "elide" : "lockstep");
            EP.Feasible = Prune.empty();
            EP.PruneReason = Prune;
            if (EP.Feasible) {
              EP.Plan = Built;
              if (Elide)
                EP.ElidedBarriers =
                    optimizeBarriers(Program, EP.Plan).ElidedBarriers;
            }
            E.Plans.push_back(std::move(EP));
          }
        }
  }
  return E;
}
