//===- verify/ShadowStore.cpp - Dynamic shadow race detection -------------===//

#include "verify/ShadowStore.h"

#include "stencil/FieldStore.h"
#include "stencil/StencilIR.h"
#include "support/Diagnostics.h"
#include "support/Format.h"

using namespace icores;

/// Per-cell access metadata over one Array3D's index space. Reads keep a
/// full per-worker map (a write must be ordered after *every* prior read,
/// not just the latest), writes keep the FastTrack-style last-writer
/// epoch: a new access is ordered after the last write iff the accessor's
/// clock covers (writer, time).
struct ShadowStore::ArrayShadow {
  Box3 Space;
  std::string Name;
  std::vector<int32_t> Writer;
  std::vector<uint64_t> WriteTime;
  std::vector<std::map<int, uint64_t>> Reads;

  explicit ArrayShadow(const Box3 &ASpace)
      : Space(ASpace),
        Writer(static_cast<size_t>(ASpace.numPoints()), -1),
        WriteTime(static_cast<size_t>(ASpace.numPoints()), 0),
        Reads(static_cast<size_t>(ASpace.numPoints())) {}

  size_t index(int I, int J, int K) const {
    return (static_cast<size_t>(I - Space.Lo[0]) *
                static_cast<size_t>(Space.extent(1)) +
            static_cast<size_t>(J - Space.Lo[1])) *
               static_cast<size_t>(Space.extent(2)) +
           static_cast<size_t>(K - Space.Lo[2]);
  }
};

/// One barrier site's rendezvous bookkeeping. Generations handle reuse:
/// a fast worker may re-arrive for crossing g+1 while a slow worker has
/// not yet departed crossing g, so the merged clock of each crossing is
/// published under its generation and garbage-collected once every
/// participant departed.
struct ShadowStore::BarrierSite {
  uint64_t ArriveGen = 0;
  int Arrived = 0;
  VectorClock Accum;
  std::map<uint64_t, VectorClock> Published;
  std::map<uint64_t, int> Outstanding;
  std::map<int, uint64_t> WorkerGen;
};

ShadowStore::ShadowStore() = default;
ShadowStore::ShadowStore(Options AOpts) : Opts(AOpts) {}
ShadowStore::~ShadowStore() = default;

VectorClock &ShadowStore::clock(int Worker) {
  if (static_cast<size_t>(Worker) >= Clocks.size())
    Clocks.resize(static_cast<size_t>(Worker) + 1);
  VectorClock &C = Clocks[static_cast<size_t>(Worker)];
  if (C.get(Worker) == 0)
    C.set(Worker, 1); // Each worker's own component starts live.
  return C;
}

ShadowStore::ArrayShadow &ShadowStore::shadowFor(const Array3D &Arr,
                                                 const std::string &Name) {
  auto It = Arrays.find(&Arr);
  if (It == Arrays.end())
    It = Arrays.emplace(&Arr, ArrayShadow(Arr.indexSpace())).first;
  if (!Name.empty())
    It->second.Name = Name;
  return It->second;
}

void ShadowStore::noteRace(const char *Kind, const ArrayShadow &AS, int I,
                           int J, int K, int Prev, int Cur) {
  ++TotalRaces;
  if (Races.size() >= Opts.MaxWitnesses)
    return;
  Race R;
  R.Kind = Kind;
  R.Array = AS.Name.empty() ? "<unnamed>" : AS.Name;
  R.Cell[0] = I;
  R.Cell[1] = J;
  R.Cell[2] = K;
  R.PrevWorker = Prev;
  R.CurWorker = Cur;
  Races.push_back(std::move(R));
}

void ShadowStore::writeCells(int Worker, ArrayShadow &AS,
                             const Box3 &Region) {
  Box3 Clip = Region.intersect(AS.Space);
  if (Clip.empty())
    return;
  const VectorClock &C = clock(Worker);
  uint64_t Now = C.get(Worker);
  for (int I = Clip.Lo[0]; I != Clip.Hi[0]; ++I)
    for (int J = Clip.Lo[1]; J != Clip.Hi[1]; ++J)
      for (int K = Clip.Lo[2]; K != Clip.Hi[2]; ++K) {
        size_t Cell = AS.index(I, J, K);
        ++Accesses;
        int32_t W = AS.Writer[Cell];
        if (W >= 0 && W != Worker && !C.covers(W, AS.WriteTime[Cell]))
          noteRace("write-write", AS, I, J, K, W, Worker);
        for (const auto &[Reader, Time] : AS.Reads[Cell])
          if (Reader != Worker && !C.covers(Reader, Time))
            noteRace("read-write", AS, I, J, K, Reader, Worker);
        AS.Writer[Cell] = Worker;
        AS.WriteTime[Cell] = Now;
        // Unordered prior reads were reported above; ordered ones are
        // subsumed by this write for every later access.
        AS.Reads[Cell].clear();
      }
}

void ShadowStore::readCells(int Worker, ArrayShadow &AS, const Box3 &Region) {
  Box3 Clip = Region.intersect(AS.Space);
  if (Clip.empty())
    return;
  const VectorClock &C = clock(Worker);
  uint64_t Now = C.get(Worker);
  for (int I = Clip.Lo[0]; I != Clip.Hi[0]; ++I)
    for (int J = Clip.Lo[1]; J != Clip.Hi[1]; ++J)
      for (int K = Clip.Lo[2]; K != Clip.Hi[2]; ++K) {
        size_t Cell = AS.index(I, J, K);
        ++Accesses;
        int32_t W = AS.Writer[Cell];
        if (W >= 0 && W != Worker && !C.covers(W, AS.WriteTime[Cell]))
          noteRace("read-write", AS, I, J, K, W, Worker);
        AS.Reads[Cell][Worker] = Now;
      }
}

void ShadowStore::onBarrierArrive(uint64_t Site, int Worker,
                                  int Participants) {
  std::lock_guard<std::mutex> Lock(Mutex);
  BarrierSite &S = Sites[Site];
  S.Accum.merge(clock(Worker));
  S.WorkerGen[Worker] = S.ArriveGen;
  if (++S.Arrived == Participants) {
    S.Outstanding[S.ArriveGen] = Participants;
    S.Published[S.ArriveGen] = std::move(S.Accum);
    S.Accum = VectorClock();
    S.Arrived = 0;
    ++S.ArriveGen;
  }
}

void ShadowStore::onBarrierDepart(uint64_t Site, int Worker) {
  std::lock_guard<std::mutex> Lock(Mutex);
  BarrierSite &S = Sites[Site];
  auto GenIt = S.WorkerGen.find(Worker);
  if (GenIt == S.WorkerGen.end())
    return; // Depart without arrive: ignore rather than corrupt clocks.
  uint64_t Gen = GenIt->second;
  auto PubIt = S.Published.find(Gen);
  if (PubIt == S.Published.end())
    return; // Same defensive stance.
  VectorClock &C = clock(Worker);
  C.merge(PubIt->second);
  C.tick(Worker);
  if (--S.Outstanding[Gen] == 0) {
    S.Published.erase(Gen);
    S.Outstanding.erase(Gen);
  }
}

void ShadowStore::onPass(int Worker, const StencilProgram &Program,
                         FieldStore &Store, StageId Stage, const Box3 &Sub) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const StageDef &SD = Program.stage(Stage);
  for (const StageInput &In : SD.Inputs)
    readCells(Worker,
              shadowFor(Store.get(In.Array), Program.array(In.Array).Name),
              In.readRegion(Sub));
  for (ArrayId Out : SD.Outputs)
    writeCells(Worker, shadowFor(Store.get(Out), Program.array(Out).Name),
               Sub);
}

void ShadowStore::onImport(int Worker, const Array3D &Src, const Array3D &Buf,
                           const Box3 &Sub, int NI, int NJ, int NK) {
  auto Wrap = [](int X, int N) { return ((X % N) + N) % N; };
  std::lock_guard<std::mutex> Lock(Mutex);
  ArrayShadow &SrcAS = shadowFor(Src, "");
  const VectorClock &C = clock(Worker);
  // The gather reads periodically wrapped *core* positions of the shared
  // array; record each as an ordinary read.
  for (int I = Sub.Lo[0]; I != Sub.Hi[0]; ++I) {
    int WI = Wrap(I, NI);
    for (int J = Sub.Lo[1]; J != Sub.Hi[1]; ++J) {
      int WJ = Wrap(J, NJ);
      for (int K = Sub.Lo[2]; K != Sub.Hi[2]; ++K) {
        int WK = Wrap(K, NK);
        size_t Cell = SrcAS.index(WI, WJ, WK);
        ++Accesses;
        int32_t W = SrcAS.Writer[Cell];
        if (W >= 0 && W != Worker && !C.covers(W, SrcAS.WriteTime[Cell]))
          noteRace("read-write", SrcAS, WI, WJ, WK, W, Worker);
        SrcAS.Reads[Cell][Worker] = C.get(Worker);
      }
    }
  }
  writeCells(Worker, shadowFor(Buf, ""), Sub);
}

void ShadowStore::recordWrite(int Worker, const Array3D &Arr,
                              const Box3 &Region, const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  writeCells(Worker, shadowFor(Arr, Name), Region);
}

void ShadowStore::recordRead(int Worker, const Array3D &Arr,
                             const Box3 &Region, const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  readCells(Worker, shadowFor(Arr, Name), Region);
}

size_t ShadowStore::raceCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return TotalRaces;
}

uint64_t ShadowStore::accessCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Accesses;
}

void ShadowStore::reportFindings(DiagnosticEngine &Diags) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Race &R : Races)
    Diags
        .report(Severity::Error, "shadow.race." + R.Kind,
                formatString("unordered %s on %s at (%d, %d, %d)",
                             R.Kind.c_str(), R.Array.c_str(), R.Cell[0],
                             R.Cell[1], R.Cell[2]))
        .note("array", R.Array)
        .note("workers", formatString("%d vs %d", R.PrevWorker, R.CurWorker));
  if (TotalRaces > Races.size())
    Diags.report(Severity::Note, "shadow.race.truncated",
                 formatString("%zu further races not stored",
                              TotalRaces - Races.size()));
}

void ShadowStore::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Clocks.clear();
  Arrays.clear();
  Sites.clear();
  Races.clear();
  TotalRaces = 0;
  Accesses = 0;
}
