//===- verify/Mutator.cpp - Analysis mutation testing ---------------------===//

#include "verify/Mutator.h"

#include "exec/RegionSplit.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <utility>
#include <vector>

using namespace icores;

const char *icores::mutantClassName(MutantClass Class) {
  switch (Class) {
  case MutantClass::DropBarrier:
    return "drop-barrier";
  case MutantClass::WidenWindow:
    return "widen-window";
  case MutantClass::NarrowWindow:
    return "narrow-window";
  case MutantClass::ReorderEpochStep:
    return "reorder-epoch-step";
  case MutantClass::SkipHaloImport:
    return "skip-halo-import";
  }
  return "?";
}

const char *icores::mutantKillIdPrefix(MutantClass Class) {
  switch (Class) {
  case MutantClass::DropBarrier:
    return "race.intra.";
  case MutantClass::WidenWindow:
    return "plan.pass.exceeds-global";
  case MutantClass::NarrowWindow:
    return "plan.output.coverage";
  case MutantClass::ReorderEpochStep:
    return "plan.temporal.step-order";
  case MutantClass::SkipHaloImport:
    return "plan.pass.read-before-compute";
  }
  return "?";
}

namespace {

/// Picks a random element of \p Cands, or returns false when empty.
template <typename T>
bool pick(const std::vector<T> &Cands, SplitMix64 &Rng, T &Out) {
  if (Cands.empty())
    return false;
  Out = Cands[static_cast<size_t>(Rng.nextBounded(Cands.size()))];
  return true;
}

/// Ground truth for DropBarrier: with P's barrier gone, the executor runs
/// P and the next pass Q in one barrier-free epoch, thread t1 writing its
/// teamSubRegion() share of P while thread t2 reads its window-expanded
/// share of Q — the *same* split the executor uses. When some consumed
/// input of Q overlaps another thread's P write, the mutant races by
/// construction (this re-derives the dependence from the split primitive
/// and the IR windows; the checker under test is never consulted).
bool dropBarrierRaces(const StencilProgram &Program, const IslandPlan &Island,
                      const StagePass &P, const StagePass &Q) {
  const int N = Island.NumThreads;
  if (N < 2 || !P.BarrierAfter || P.Region.empty() || Q.Region.empty())
    return false;
  const StageDef &ProducerStage = Program.stage(P.Stage);
  for (const StageInput &In : Program.stage(Q.Stage).Inputs) {
    bool Produced = false;
    for (ArrayId Out : ProducerStage.Outputs)
      Produced |= Out == In.Array;
    if (!Produced)
      continue;
    for (int T1 = 0; T1 != N; ++T1) {
      Box3 W = teamSubRegion(P.Region, T1, N);
      if (W.empty())
        continue;
      for (int T2 = 0; T2 != N; ++T2) {
        if (T1 == T2)
          continue;
        Box3 R = In.readRegion(teamSubRegion(Q.Region, T2, N));
        if (!W.intersect(R).empty())
          return true;
      }
    }
  }
  return false;
}

struct PassRef {
  size_t Island = 0;
  size_t Block = 0;
  size_t Pass = 0;
};

} // namespace

bool icores::applyMutation(ExecutionPlan &Plan, const StencilProgram &Program,
                           MutantClass Class, SplitMix64 &Rng) {
  switch (Class) {
  case MutantClass::DropBarrier: {
    std::vector<PassRef> Cands;
    for (size_t I = 0; I != Plan.Islands.size(); ++I) {
      const IslandPlan &Island = Plan.Islands[I];
      for (size_t B = 0; B != Island.Blocks.size(); ++B) {
        const std::vector<StagePass> &Passes = Island.Blocks[B].Passes;
        for (size_t P = 0; P + 1 < Passes.size(); ++P)
          if (dropBarrierRaces(Program, Island, Passes[P], Passes[P + 1]))
            Cands.push_back({I, B, P});
        // A pass producing a reduced array races without its barrier by
        // construction: the runtime folds the whole pass region on the
        // team's thread 0 right after it. These mutants are killed by
        // the `race.intra.reduction` finding.
        for (size_t P = 0; P != Passes.size(); ++P)
          if (Island.NumThreads > 1 && Passes[P].BarrierAfter &&
              !Passes[P].Region.empty() &&
              Program.stageWritesReduced(Passes[P].Stage))
            Cands.push_back({I, B, P});
      }
    }
    PassRef Ref;
    if (!pick(Cands, Rng, Ref))
      return false;
    Plan.Islands[Ref.Island]
        .Blocks[Ref.Block]
        .Passes[Ref.Pass]
        .BarrierAfter = false;
    return true;
  }

  case MutantClass::WidenWindow: {
    // Growing any non-empty pass by more than the whole domain span pushes
    // every face past the per-step global cone, so the exceeds-global
    // containment check must fire regardless of where the pass sits.
    std::vector<PassRef> Cands;
    for (size_t I = 0; I != Plan.Islands.size(); ++I)
      for (size_t B = 0; B != Plan.Islands[I].Blocks.size(); ++B)
        for (size_t P = 0; P != Plan.Islands[I].Blocks[B].Passes.size(); ++P)
          if (!Plan.Islands[I].Blocks[B].Passes[P].Region.empty())
            Cands.push_back({I, B, P});
    PassRef Ref;
    if (!pick(Cands, Rng, Ref))
      return false;
    StagePass &Pass =
        Plan.Islands[Ref.Island].Blocks[Ref.Block].Passes[Ref.Pass];
    int Span = 1;
    for (int D = 0; D != 3; ++D)
      Span = std::max(Span, Plan.GlobalTarget.extent(D));
    Pass.Region = Pass.Region.grownAll(Span);
    return true;
  }

  case MutantClass::NarrowWindow: {
    // The coverage check sums per-island *bounding boxes* of the
    // final-step output passes, so the clipped face must actually shrink
    // the island hull: the candidate pass has to be the unique maximizer
    // of Hi[Dim] among its island's final-step passes of the output stage.
    // Clipping it then strictly shrinks the island box, the covered-point
    // sum drops below the target, and plan.output.coverage fires.
    struct FaceRef {
      PassRef Ref;
      int Dim = 0;
    };
    std::vector<FaceRef> Cands;
    for (ArrayId Out : Program.stepOutputs()) {
      StageId Producer = Program.producerOf(Out);
      if (Producer == NoStage)
        continue;
      for (size_t I = 0; I != Plan.Islands.size(); ++I) {
        std::vector<PassRef> OutPasses;
        for (size_t B = 0; B != Plan.Islands[I].Blocks.size(); ++B) {
          const BlockTask &Block = Plan.Islands[I].Blocks[B];
          if (Block.StepInEpoch != Plan.TemporalDepth - 1)
            continue;
          for (size_t P = 0; P != Block.Passes.size(); ++P)
            if (Block.Passes[P].Stage == Producer &&
                !Block.Passes[P].Region.empty())
              OutPasses.push_back({I, B, P});
        }
        for (const PassRef &Ref : OutPasses) {
          const Box3 &R =
              Plan.Islands[I].Blocks[Ref.Block].Passes[Ref.Pass].Region;
          for (int D = 0; D != 3; ++D) {
            if (R.extent(D) < 2)
              continue;
            bool UniqueMax = true;
            for (const PassRef &Other : OutPasses) {
              if (Other.Block == Ref.Block && Other.Pass == Ref.Pass)
                continue;
              const Box3 &O =
                  Plan.Islands[I].Blocks[Other.Block].Passes[Other.Pass]
                      .Region;
              UniqueMax &= O.Hi[D] < R.Hi[D];
            }
            if (UniqueMax)
              Cands.push_back({Ref, D});
          }
        }
      }
    }
    FaceRef Face;
    if (!pick(Cands, Rng, Face))
      return false;
    Plan.Islands[Face.Ref.Island]
        .Blocks[Face.Ref.Block]
        .Passes[Face.Ref.Pass]
        .Region.Hi[Face.Dim] -= 1;
    return true;
  }

  case MutantClass::ReorderEpochStep: {
    if (Plan.TemporalDepth < 2)
      return false;
    std::vector<std::pair<size_t, size_t>> Cands; // (island, block b): swap b-1, b
    for (size_t I = 0; I != Plan.Islands.size(); ++I) {
      const std::vector<BlockTask> &Blocks = Plan.Islands[I].Blocks;
      for (size_t B = 1; B < Blocks.size(); ++B)
        if (Blocks[B].StepInEpoch != Blocks[B - 1].StepInEpoch)
          Cands.push_back({I, B});
    }
    std::pair<size_t, size_t> Ref;
    if (!pick(Cands, Rng, Ref))
      return false;
    std::vector<BlockTask> &Blocks = Plan.Islands[Ref.first].Blocks;
    std::swap(Blocks[Ref.second - 1], Blocks[Ref.second]);
    return true;
  }

  case MutantClass::SkipHaloImport: {
    // Restricted to each island's *first* block (nothing of the fused
    // step is computed before it), pick a producer pass P and a later
    // consumer pass Q of the same block where the consumer's dependence
    // cone touches P's low face: Needed.Lo[D] == P.Region.Lo[D]. Clipping
    // that face off P removes exactly the redundant halo plane the cone
    // needs, so plan.pass.read-before-compute must fire — no earlier pass
    // of the stage exists that could cover the hole.
    struct FaceRef {
      PassRef Ref;
      int Dim = 0;
    };
    std::vector<FaceRef> Cands;
    for (size_t I = 0; I != Plan.Islands.size(); ++I) {
      if (Plan.Islands[I].Blocks.empty())
        continue;
      const std::vector<StagePass> &Passes = Plan.Islands[I].Blocks[0].Passes;
      for (size_t P = 0; P != Passes.size(); ++P) {
        const Box3 &PR = Passes[P].Region;
        if (PR.empty())
          continue;
        for (size_t Q = P + 1; Q != Passes.size(); ++Q) {
          if (Passes[Q].Region.empty())
            continue;
          for (const StageInput &In : Program.stage(Passes[Q].Stage).Inputs) {
            if (Program.producerOf(In.Array) != Passes[P].Stage)
              continue;
            Box3 Needed = In.readRegion(Passes[Q].Region);
            for (int D = 0; D != 3; ++D)
              if (PR.extent(D) >= 2 && Needed.Lo[D] == PR.Lo[D])
                Cands.push_back({{I, 0, P}, D});
          }
        }
      }
    }
    FaceRef Face;
    if (!pick(Cands, Rng, Face))
      return false;
    Plan.Islands[Face.Ref.Island]
        .Blocks[0]
        .Passes[Face.Ref.Pass]
        .Region.Lo[Face.Dim] += 1;
    return true;
  }
  }
  return false;
}

bool icores::mutantKilled(MutantClass Class, const DiagnosticEngine &Diags) {
  const std::string Prefix = mutantKillIdPrefix(Class);
  for (const Finding &F : Diags.findings())
    if (F.Id.compare(0, Prefix.size(), Prefix) == 0)
      return true;
  return false;
}
