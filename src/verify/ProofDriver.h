//===- verify/ProofDriver.h - Plan-space static proof driver ----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the full verification suite over the enumerated plan space
/// (verify/PlanSpace.h) and the synchronization protocol models
/// (verify/ProtocolCheck.h), and runs the analysis mutation suite
/// (verify/Mutator.h) that proves the checkers still detect the defect
/// classes they exist for. Emits one `icores.prove.v1` record per plan —
/// verdict `proved`, `pruned`, or `violated`, with the first
/// happens-before witness for any violation — plus the protocol and
/// mutation results, to BENCH_prove.json.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_VERIFY_PROOFDRIVER_H
#define ICORES_VERIFY_PROOFDRIVER_H

#include "verify/Mutator.h"
#include "verify/PlanSpace.h"
#include "verify/ProtocolCheck.h"

#include <cstdint>
#include <string>
#include <vector>

namespace icores {

class OStream;

struct ProofOptions {
  PlanSpaceOptions Space;
  /// Team sizes the barrier model is exhaustively explored for.
  std::vector<int> BarrierThreadCounts = {2, 3, 5};
  int BarrierCrossings = 2;
  /// Rank grids the MPDATA comm schedule is checked on.
  std::vector<std::pair<int, int>> CommGrids = {{1, 1}, {2, 1}, {2, 2}};
  int CommNI = 16, CommNJ = 16, CommNK = 8, CommSteps = 2;
  /// Analysis mutation testing (verify/Mutator.h).
  bool RunMutation = true;
  int MutantsPerClass = 4;
  uint64_t MutationSeed = 0x1C0DE5u;
};

/// Static proof outcome for one enumerated plan.
struct PlanProofRecord {
  PlanPoint Point;
  std::string Verdict; ///< "proved" | "pruned" | "violated".
  std::string PruneReason;
  size_t Errors = 0;
  /// First error finding ("id: message [notes]") when violated — for race
  /// findings this carries the thread pair and overlap box, i.e. the
  /// happens-before witness.
  std::string Witness;
};

struct BarrierProofRecord {
  int Threads = 0;
  int Crossings = 0;
  int64_t States = 0;
  bool Ok = false;
  std::string Witness;
};

struct BarrierMutantRecord {
  std::string Mutant;
  bool Caught = false;
};

struct CommProofRecord {
  int PI = 1, PJ = 1;
  std::string Kind; ///< "clean" | "death".
  int64_t Ops = 0;
  bool Ok = false;
  std::string Witness;
};

struct CommMutantRecord {
  std::string Mutant;
  bool Caught = false;
};

struct MutationClassRecord {
  MutantClass Class = MutantClass::DropBarrier;
  int Mutants = 0;
  int Killed = 0;
};

struct ProofReport {
  ProofOptions Opts;
  std::vector<PlanProofRecord> Plans;
  std::vector<BarrierProofRecord> Barrier;
  std::vector<BarrierMutantRecord> BarrierMutants;
  std::vector<CommProofRecord> Comm;
  std::vector<CommMutantRecord> CommMutants;
  std::vector<MutationClassRecord> Mutation;

  size_t numWithVerdict(const char *Verdict) const;
  /// Every feasible plan proved (pruned points do not count against).
  bool allPlansProved() const;
  /// Every barrier/comm exploration clean and every protocol mutant caught.
  bool protocolOk() const;
  /// Killed mutants / generated mutants, 1.0 when none were generated.
  double killRate() const;
  /// 100% kill rate and at least one mutant per class.
  bool allMutantsKilled() const;
  bool ok() const {
    return allPlansProved() && protocolOk() && allMutantsKilled();
  }
};

/// Runs the whole suite: plan-space proofs, protocol models (including
/// the seeded model/schedule mutants), and the plan mutation suite.
ProofReport runProofSuite(const ProofOptions &Opts = {});

/// Verifies the temporal coverage model of one plan: the per-step targets
/// nest (each fused step's cone contains the next) and the final step is
/// exactly the global target. Reports plan.temporal.cone-nesting.
bool checkTemporalCoverage(const StencilProgram &Program,
                           const ExecutionPlan &Plan, DiagnosticEngine &Diags);

/// Writes the report as one icores.prove.v1 JSON document.
void writeProveJson(const ProofReport &Report, OStream &OS);

/// Writes the JSON to \p Path; returns false on I/O failure.
bool writeProveJsonFile(const ProofReport &Report, const std::string &Path);

} // namespace icores

#endif // ICORES_VERIFY_PROOFDRIVER_H
