//===- verify/Mutator.h - Analysis mutation testing ------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutation testing *of the analyses*: seeded plan mutations that each
/// introduce one class of real defect, paired with the finding class the
/// static checkers must kill it with. A checker that silently stopped
/// reporting would survive the satellite tests (which assert clean plans
/// stay clean) — here it fails loudly, because its mutant class stops
/// dying. Candidates are selected by *ground truth* (data-dependence and
/// geometry arguments spelled out per class below), never by asking the
/// checker under test, so a broken checker cannot bias the sample.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_VERIFY_MUTATOR_H
#define ICORES_VERIFY_MUTATOR_H

#include "core/ExecutionPlan.h"
#include "stencil/StencilIR.h"
#include "support/Random.h"

#include <string>

namespace icores {

class DiagnosticEngine;

enum class MutantClass {
  /// Clears the BarrierAfter bit between a producer pass and a consumer
  /// pass where, under the executor's own teamSubRegion() split, another
  /// thread's window-expanded read overlaps the writer's share — the
  /// boundary cells then race. Killed by the schedule race check
  /// (race.intra.*).
  DropBarrier,
  /// Widens one pass's computed window past the per-step global
  /// dependence cone. Killed by plan.pass.exceeds-global.
  WidenWindow,
  /// Narrows a final-step output pass on a face only it reaches, opening
  /// a coverage hole in the step output. Killed by plan.output.coverage.
  NarrowWindow,
  /// Swaps two blocks across a fused-step boundary, so a step-t+1 block
  /// runs before the last step-t block. Killed by
  /// plan.temporal.step-order. Applies only to TemporalDepth > 1 plans.
  ReorderEpochStep,
  /// Clips the low face of a producer pass in an island's first block
  /// where a later pass's dependence cone touches that face — the
  /// redundant halo plane is no longer computed, so the consumer reads
  /// cells nothing produced. Killed by plan.pass.read-before-compute.
  SkipHaloImport,
};

constexpr MutantClass AllMutantClasses[] = {
    MutantClass::DropBarrier,     MutantClass::WidenWindow,
    MutantClass::NarrowWindow,    MutantClass::ReorderEpochStep,
    MutantClass::SkipHaloImport,
};

/// Kebab-case class name ("drop-barrier", ...), used in BENCH_prove.json.
const char *mutantClassName(MutantClass Class);

/// The finding-id prefix whose presence kills this class ("race.intra."
/// for DropBarrier — the temporal step suffix still matches).
const char *mutantKillIdPrefix(MutantClass Class);

/// Applies one seeded mutation of \p Class to \p Plan. Returns false when
/// the class has no ground-truth candidate in this plan (e.g. a temporal
/// reorder on a T == 1 plan, or a one-thread-per-island plan for
/// DropBarrier); the plan is unchanged in that case.
bool applyMutation(ExecutionPlan &Plan, const StencilProgram &Program,
                   MutantClass Class, SplitMix64 &Rng);

/// Whether \p Diags contains a finding whose id starts with the class's
/// kill prefix.
bool mutantKilled(MutantClass Class, const DiagnosticEngine &Diags);

} // namespace icores

#endif // ICORES_VERIFY_MUTATOR_H
