//===- verify/PlanSpace.h - Reachable plan-space enumeration ----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates every reachable ExecutionPlan configuration of the proof
/// driver's verification space: every registered workload (the built-in
/// WorkloadRegistry roster — MPDATA, the advection-diffusion app, the
/// reduction-carrying CFL advection, ...) x all three strategies x team
/// counts {1, 2, 4} x temporal depths {1, 2, 4} x barrier elision on/off.
/// Infeasible points are pruned by the same rules PlanAdvisor uses
/// (whole-epoch step counts, widened cones bounded by 2x the grid, enough
/// planes along the partition dimension) but are still *emitted*, tagged
/// with the prune reason, so the prover's record set covers the whole
/// space — a pruned point in BENCH_prove.json is a decision, not a gap.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_VERIFY_PLANSPACE_H
#define ICORES_VERIFY_PLANSPACE_H

#include "core/ExecutionPlan.h"
#include "machine/MachineModel.h"
#include "stencil/StencilIR.h"

#include <string>
#include <vector>

namespace icores {

/// Enumeration bounds. The default grid is the smallest on which an
/// MPDATA temporal depth of 4 still passes the advisor's 2x-cone prune
/// (halo 3, 3 extra fused steps: 48+18 <= 96 and 32+18 <= 64).
struct PlanSpaceOptions {
  int NI = 48, NJ = 32, NK = 32;
  int TimeSteps = 8;
  std::vector<int> TeamCounts = {1, 2, 4};
  std::vector<int> TemporalDepths = {1, 2, 4};
  /// Registered workload names to restrict the space to; empty means
  /// every workload of the built-in registry. Unknown names are fatal
  /// (the proof suite must never silently verify nothing).
  std::vector<std::string> Workloads;
};

/// One workload the space is enumerated over.
struct PlanSpaceWorkload {
  std::string Name; ///< Registry name: "mpdata", "advdiff", ...
  StencilProgram Program;
};

/// Coordinates of one point of the space.
struct PlanPoint {
  size_t WorkloadIndex = 0;
  std::string Workload;
  Strategy Strat = Strategy::Original;
  int Teams = 1;
  int TemporalDepth = 1;
  bool Elide = false;
  /// Stable record key, e.g. "mpdata/islands/teams2/T4/elide".
  std::string Label;
};

/// One enumerated point: either a built (and optionally barrier-elided)
/// plan, or a pruned coordinate with the reason.
struct EnumeratedPlan {
  PlanPoint Point;
  bool Feasible = false;
  std::string PruneReason; ///< Non-empty exactly when !Feasible.
  ExecutionPlan Plan;      ///< Meaningful only when Feasible.
  int64_t ElidedBarriers = 0; ///< Barriers removed when Point.Elide.
};

/// The whole enumerated space.
struct PlanSpaceEnumeration {
  PlanSpaceOptions Opts;
  std::vector<PlanSpaceWorkload> Workloads;
  std::vector<EnumeratedPlan> Plans;
};

/// The machine the space is planned against: a toy NUMA box with \p Teams
/// sockets of 2 cores, so team count maps 1:1 onto sockets.
MachineModel planSpaceMachine(int Teams);

/// Short stable strategy key: "original", "block31d", "islands".
const char *strategyKey(Strategy S);

/// Enumerates the full space (builds every feasible plan).
PlanSpaceEnumeration enumeratePlanSpace(const PlanSpaceOptions &Opts = {});

} // namespace icores

#endif // ICORES_VERIFY_PLANSPACE_H
