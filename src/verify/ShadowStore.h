//===- verify/ShadowStore.h - Dynamic shadow race detection ----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow race detector: an ExecObserver implementation that mirrors
/// every cell the executor's workers touch with last-writer / last-reader
/// metadata and per-worker vector clocks advanced at each barrier
/// crossing. Two accesses to the same cell race exactly when neither's
/// clock covers the other — i.e. no chain of TeamBarrier or global-barrier
/// crossings separates them. Because cells are keyed by the *actual*
/// Array3D instance resolved through the island's FieldStore at pass time,
/// temporal rebinding (imports, scratch, final-step shared writes) is
/// tracked for free: step t's scratch writes and step t+1's reads land on
/// the same buffer, while two islands' private cones never collide.
///
/// This is the dynamic cross-check of the static ScheduleCheck pass: every
/// schedule the static analysis certifies race-free must execute clean
/// here (unsoundness check), and seeded barrier-drop mutants must be
/// caught (over-approximation check). All hooks serialize on one mutex;
/// the detector is meant for test-sized grids, not production runs.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_VERIFY_SHADOWSTORE_H
#define ICORES_VERIFY_SHADOWSTORE_H

#include "exec/ExecObserver.h"
#include "grid/Array3D.h"
#include "grid/Box3.h"
#include "verify/VectorClock.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace icores {

class DiagnosticEngine;

class ShadowStore final : public ExecObserver {
public:
  struct Options {
    /// How many individual races to keep as witnesses; further races are
    /// counted but not stored.
    size_t MaxWitnesses = 16;
  };

  ShadowStore();
  explicit ShadowStore(Options AOpts);
  // Out-of-line: the map element types are only complete in the .cpp.
  ~ShadowStore() override;

  // ExecObserver hooks (driven by ProgramExecutor worker threads).
  void onBarrierArrive(uint64_t Site, int Worker, int Participants) override;
  void onBarrierDepart(uint64_t Site, int Worker) override;
  void onPass(int Worker, const StencilProgram &Program, FieldStore &Store,
              StageId Stage, const Box3 &Sub) override;
  void onImport(int Worker, const Array3D &Src, const Array3D &Buf,
                const Box3 &Sub, int NI, int NJ, int NK) override;

  // Direct-drive interface for unit tests and hand-built interleavings.
  void recordWrite(int Worker, const Array3D &Arr, const Box3 &Region,
                   const std::string &Name = "");
  void recordRead(int Worker, const Array3D &Arr, const Box3 &Region,
                  const std::string &Name = "");

  /// Total races detected so far (stored witnesses may be fewer).
  size_t raceCount() const;

  /// Total cell accesses recorded (a tripwire for hooks not firing).
  uint64_t accessCount() const;

  bool clean() const { return raceCount() == 0; }

  /// Emits one error finding per stored witness: shadow.race.write-write
  /// or shadow.race.read-write, with array/cell/worker notes.
  void reportFindings(DiagnosticEngine &Diags) const;

  /// Forgets all shadow state (clocks, cells, races).
  void clear();

private:
  struct ArrayShadow;
  struct BarrierSite;

  VectorClock &clock(int Worker);
  ArrayShadow &shadowFor(const Array3D &Arr, const std::string &Name);
  void writeCells(int Worker, ArrayShadow &AS, const Box3 &Region);
  void readCells(int Worker, ArrayShadow &AS, const Box3 &Region);
  void noteRace(const char *Kind, const ArrayShadow &AS, int I, int J, int K,
                int Prev, int Cur);

  Options Opts;
  mutable std::mutex Mutex;
  std::vector<VectorClock> Clocks;
  std::map<const Array3D *, ArrayShadow> Arrays;
  std::map<uint64_t, BarrierSite> Sites;

  struct Race {
    std::string Kind; ///< "write-write" or "read-write"
    std::string Array;
    int Cell[3];
    int PrevWorker;
    int CurWorker;
  };
  std::vector<Race> Races;
  size_t TotalRaces = 0;
  uint64_t Accesses = 0;
};

} // namespace icores

#endif // ICORES_VERIFY_SHADOWSTORE_H
