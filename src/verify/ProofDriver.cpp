//===- verify/ProofDriver.cpp - Plan-space static proof driver ------------===//

#include "verify/ProofDriver.h"

#include "core/PlanVerifier.h"
#include "exec/ScheduleCheck.h"
#include "stencil/HaloAnalysis.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/OStream.h"

#include <algorithm>
#include <cstdio>

using namespace icores;

namespace {

/// Renders one finding as "id: message [k=v, ...]".
std::string findingString(const Finding &F) {
  std::string S = F.Id + ": " + F.Message;
  if (!F.Notes.empty()) {
    S += " [";
    for (size_t N = 0; N != F.Notes.size(); ++N) {
      if (N != 0)
        S += ", ";
      S += F.Notes[N].first + "=" + F.Notes[N].second;
    }
    S += "]";
  }
  return S;
}

std::string firstErrorWitness(const DiagnosticEngine &Diags) {
  for (const Finding &F : Diags.findings())
    if (F.Sev == Severity::Error)
      return findingString(F);
  return std::string();
}

/// The full static suite one plan must pass to be proved.
bool proveOnePlan(const StencilProgram &Program, const ExecutionPlan &Plan,
                  DiagnosticEngine &Diags) {
  bool Ok = verifyPlan(Plan, Program, Diags);
  Ok &= checkPlanRaces(Program, Plan, Diags);
  Ok &= checkTemporalCoverage(Program, Plan, Diags);
  return Ok;
}

} // namespace

bool icores::checkTemporalCoverage(const StencilProgram &Program,
                                   const ExecutionPlan &Plan,
                                   DiagnosticEngine &Diags) {
  size_t ErrorsBefore = Diags.numErrors();
  if (Plan.TemporalDepth < 1)
    return true; // verifyPlan reports the invalid depth.
  std::vector<Box3> Targets =
      temporalStepTargets(Program, Plan.GlobalTarget, Plan.TemporalDepth);
  if (Targets.size() != static_cast<size_t>(Plan.TemporalDepth)) {
    Diags.report(Severity::Error, "plan.temporal.cone-nesting",
                 formatString("expected %d per-step targets, model yields "
                              "%zu",
                              Plan.TemporalDepth, Targets.size()));
    return false;
  }
  for (size_t T = 0; T + 1 < Targets.size(); ++T)
    if (!Targets[T].containsBox(Targets[T + 1]))
      Diags.report(Severity::Error, "plan.temporal.cone-nesting",
                   formatString("fused step %zu cone %s does not contain "
                                "step %zu cone %s",
                                T, Targets[T].str().c_str(), T + 1,
                                Targets[T + 1].str().c_str()));
  if (!(Targets.back() == Plan.GlobalTarget))
    Diags.report(Severity::Error, "plan.temporal.cone-nesting",
                 formatString("final fused step cone %s is not the global "
                              "target %s",
                              Targets.back().str().c_str(),
                              Plan.GlobalTarget.str().c_str()));
  return Diags.numErrors() == ErrorsBefore;
}

size_t ProofReport::numWithVerdict(const char *Verdict) const {
  size_t N = 0;
  for (const PlanProofRecord &R : Plans)
    N += R.Verdict == Verdict;
  return N;
}

bool ProofReport::allPlansProved() const {
  return numWithVerdict("violated") == 0 && numWithVerdict("proved") > 0;
}

bool ProofReport::protocolOk() const {
  for (const BarrierProofRecord &R : Barrier)
    if (!R.Ok)
      return false;
  for (const BarrierMutantRecord &R : BarrierMutants)
    if (!R.Caught)
      return false;
  for (const CommProofRecord &R : Comm)
    if (!R.Ok)
      return false;
  for (const CommMutantRecord &R : CommMutants)
    if (!R.Caught)
      return false;
  return !Barrier.empty() && !Comm.empty();
}

double ProofReport::killRate() const {
  int Mutants = 0, Killed = 0;
  for (const MutationClassRecord &R : Mutation) {
    Mutants += R.Mutants;
    Killed += R.Killed;
  }
  return Mutants == 0 ? 1.0
                      : static_cast<double>(Killed) /
                            static_cast<double>(Mutants);
}

bool ProofReport::allMutantsKilled() const {
  if (!Opts.RunMutation)
    return true;
  size_t NumClasses = sizeof(AllMutantClasses) / sizeof(AllMutantClasses[0]);
  if (Mutation.size() != NumClasses)
    return false;
  for (const MutationClassRecord &R : Mutation)
    if (R.Mutants == 0 || R.Killed != R.Mutants)
      return false;
  return true;
}

namespace {

void runBarrierProofs(const ProofOptions &Opts, ProofReport &Report) {
  for (int Threads : Opts.BarrierThreadCounts) {
    BarrierModelOptions BO;
    BO.NumThreads = Threads;
    BO.Crossings = Opts.BarrierCrossings;
    DiagnosticEngine Diags;
    BarrierCheckResult R = checkTeamBarrierProtocol(BO, Diags);
    BarrierProofRecord Rec;
    Rec.Threads = Threads;
    Rec.Crossings = BO.Crossings;
    Rec.States = R.StatesExplored;
    Rec.Ok = R.Ok;
    Rec.Witness = R.Witness;
    Report.Barrier.push_back(std::move(Rec));
  }

  // The seeded model mutants re-introduce the two classic sense-reversal
  // bugs; the explorer must reach a deadlock state for each, or it could
  // not be trusted to certify the real protocol.
  struct Mutant {
    const char *Name;
    bool NotifyBeforePublish, BlockWithoutRecheck;
  };
  for (const Mutant &M :
       {Mutant{"notify-before-publish", true, false},
        Mutant{"block-without-recheck", false, true}}) {
    BarrierModelOptions BO;
    BO.NumThreads = 2;
    BO.Crossings = Opts.BarrierCrossings;
    BO.MutantNotifyBeforePublish = M.NotifyBeforePublish;
    BO.MutantBlockWithoutRecheck = M.BlockWithoutRecheck;
    DiagnosticEngine Diags;
    BarrierCheckResult R = checkTeamBarrierProtocol(BO, Diags);
    Report.BarrierMutants.push_back({M.Name, R.Deadlock});
  }
}

void runCommProofs(const ProofOptions &Opts, ProofReport &Report) {
  std::vector<RankCommSchedule> Largest;
  for (const std::pair<int, int> &G : Opts.CommGrids) {
    std::vector<RankCommSchedule> Schedules = buildMpdataCommSchedule(
        G.first, G.second, Opts.CommNI, Opts.CommNJ, Opts.CommNK,
        Opts.CommSteps);
    if (Schedules.size() >= Largest.size())
      Largest = Schedules;
    {
      DiagnosticEngine Diags;
      CommCheckResult R = checkCommSchedule(Schedules, Diags);
      CommProofRecord Rec;
      Rec.PI = G.first;
      Rec.PJ = G.second;
      Rec.Kind = "clean";
      Rec.Ops = R.OpsExecuted;
      Rec.Ok = R.Ok;
      Rec.Witness = R.Witness;
      Report.Comm.push_back(std::move(Rec));
    }
    {
      // World poisoning: rank 0 dies before its second op; every
      // surviving rank must still terminate (blocked ops fail fast).
      DiagnosticEngine Diags;
      CommCheckResult R =
          checkCommSchedule(Schedules, Diags, /*DeadRank=*/0, /*DeathOp=*/1);
      CommProofRecord Rec;
      Rec.PI = G.first;
      Rec.PJ = G.second;
      Rec.Kind = "death";
      Rec.Ops = R.OpsExecuted;
      Rec.Ok = R.Ok;
      Rec.Witness = R.Witness;
      Report.Comm.push_back(std::move(Rec));
    }
  }

  // Seeded schedule mutants, each of which the checker must reject.
  auto firstOp = [](std::vector<RankCommSchedule> &S, CommOp::Kind K) {
    for (CommOp &Op : S[0].Ops)
      if (Op.K == K)
        return &Op;
    return static_cast<CommOp *>(nullptr);
  };
  {
    std::vector<RankCommSchedule> S = Largest;
    for (size_t I = 0; I != S[0].Ops.size(); ++I)
      if (S[0].Ops[I].K == CommOp::Kind::Send) {
        S[0].Ops.erase(S[0].Ops.begin() + static_cast<long>(I));
        break;
      }
    DiagnosticEngine Diags;
    CommCheckResult R = checkCommSchedule(S, Diags);
    Report.CommMutants.push_back({"drop-send", !R.Ok});
  }
  {
    std::vector<RankCommSchedule> S = Largest;
    for (size_t I = 0; I != S[0].Ops.size(); ++I)
      if (S[0].Ops[I].K == CommOp::Kind::Recv) {
        S[0].Ops.erase(S[0].Ops.begin() + static_cast<long>(I));
        break;
      }
    DiagnosticEngine Diags;
    CommCheckResult R = checkCommSchedule(S, Diags);
    Report.CommMutants.push_back({"drop-recv", !R.Ok});
  }
  {
    std::vector<RankCommSchedule> S = Largest;
    if (CommOp *Op = firstOp(S, CommOp::Kind::Send))
      Op->Count -= 1;
    DiagnosticEngine Diags;
    CommCheckResult R = checkCommSchedule(S, Diags);
    Report.CommMutants.push_back({"shrink-payload", !R.Ok});
  }
}

void runMutationSuite(const ProofOptions &Opts,
                      const PlanSpaceEnumeration &Space,
                      ProofReport &Report) {
  for (MutantClass Class : AllMutantClasses) {
    MutationClassRecord Rec;
    Rec.Class = Class;
    // Several sampling passes so classes whose ground-truth candidates
    // exist in few plans (e.g. temporal reorders) still reach the quota.
    for (int Pass = 0; Pass != 4 && Rec.Mutants < Opts.MutantsPerClass;
         ++Pass)
      for (size_t P = 0;
           P != Space.Plans.size() && Rec.Mutants < Opts.MutantsPerClass;
           ++P) {
        const EnumeratedPlan &EP = Space.Plans[P];
        if (!EP.Feasible)
          continue;
        const StencilProgram &Program =
            Space.Workloads[EP.Point.WorkloadIndex].Program;
        SplitMix64 Rng(Opts.MutationSeed + 0x9E3779B9u * Pass + P);
        ExecutionPlan Mutated = EP.Plan;
        if (!applyMutation(Mutated, Program, Class, Rng))
          continue;
        DiagnosticEngine Diags;
        proveOnePlan(Program, Mutated, Diags);
        ++Rec.Mutants;
        Rec.Killed += mutantKilled(Class, Diags);
      }
    Report.Mutation.push_back(Rec);
  }
}

} // namespace

ProofReport icores::runProofSuite(const ProofOptions &Opts) {
  ProofReport Report;
  Report.Opts = Opts;

  PlanSpaceEnumeration Space = enumeratePlanSpace(Opts.Space);
  for (const EnumeratedPlan &EP : Space.Plans) {
    PlanProofRecord Rec;
    Rec.Point = EP.Point;
    if (!EP.Feasible) {
      Rec.Verdict = "pruned";
      Rec.PruneReason = EP.PruneReason;
      Report.Plans.push_back(std::move(Rec));
      continue;
    }
    const StencilProgram &Program =
        Space.Workloads[EP.Point.WorkloadIndex].Program;
    DiagnosticEngine Diags;
    bool Ok = proveOnePlan(Program, EP.Plan, Diags);
    Rec.Verdict = Ok ? "proved" : "violated";
    Rec.Errors = Diags.numErrors();
    if (!Ok)
      Rec.Witness = firstErrorWitness(Diags);
    Report.Plans.push_back(std::move(Rec));
  }

  runBarrierProofs(Opts, Report);
  runCommProofs(Opts, Report);
  if (Opts.RunMutation)
    runMutationSuite(Opts, Space, Report);
  return Report;
}

namespace {

/// Writes \p S as a JSON string literal (quotes included).
void writeJsonString(OStream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        const char *Hex = "0123456789abcdef";
        char Buf[7] = {'\\', 'u', '0', '0', Hex[(C >> 4) & 0xf],
                       Hex[C & 0xf], 0};
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

} // namespace

void icores::writeProveJson(const ProofReport &Report, OStream &OS) {
  const ProofOptions &Opts = Report.Opts;
  OS << "{\n";
  OS << "  \"schema\": \"icores.prove.v1\",\n";
  OS << "  \"grid\": \""
     << formatString("%dx%dx%d", Opts.Space.NI, Opts.Space.NJ, Opts.Space.NK)
     << "\",\n";
  OS << "  \"time_steps\": " << Opts.Space.TimeSteps << ",\n";

  OS << "  \"plans\": [";
  for (size_t I = 0; I != Report.Plans.size(); ++I) {
    const PlanProofRecord &R = Report.Plans[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "    {\"label\": ";
    writeJsonString(OS, R.Point.Label);
    OS << ", \"workload\": ";
    writeJsonString(OS, R.Point.Workload);
    OS << ", \"strategy\": \"" << strategyKey(R.Point.Strat) << "\",\n";
    OS << "     \"teams\": " << R.Point.Teams
       << ", \"temporal_depth\": " << R.Point.TemporalDepth
       << ", \"elide\": " << R.Point.Elide << ", \"verdict\": \""
       << R.Verdict << "\", \"errors\": "
       << static_cast<unsigned long long>(R.Errors);
    if (!R.PruneReason.empty()) {
      OS << ",\n     \"prune_reason\": ";
      writeJsonString(OS, R.PruneReason);
    }
    if (!R.Witness.empty()) {
      OS << ",\n     \"witness\": ";
      writeJsonString(OS, R.Witness);
    }
    OS << "}";
  }
  OS << (Report.Plans.empty() ? "],\n" : "\n  ],\n");

  OS << "  \"protocol\": {\n";
  OS << "    \"barrier\": [";
  for (size_t I = 0; I != Report.Barrier.size(); ++I) {
    const BarrierProofRecord &R = Report.Barrier[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "      {\"threads\": " << R.Threads
       << ", \"crossings\": " << R.Crossings << ", \"states\": "
       << static_cast<long long>(R.States) << ", \"ok\": " << R.Ok;
    if (!R.Witness.empty()) {
      OS << ", \"witness\": ";
      writeJsonString(OS, R.Witness);
    }
    OS << "}";
  }
  OS << (Report.Barrier.empty() ? "],\n" : "\n    ],\n");
  OS << "    \"barrier_mutants\": [";
  for (size_t I = 0; I != Report.BarrierMutants.size(); ++I) {
    const BarrierMutantRecord &R = Report.BarrierMutants[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "      {\"mutant\": ";
    writeJsonString(OS, R.Mutant);
    OS << ", \"caught\": " << R.Caught << "}";
  }
  OS << (Report.BarrierMutants.empty() ? "],\n" : "\n    ],\n");
  OS << "    \"comm\": [";
  for (size_t I = 0; I != Report.Comm.size(); ++I) {
    const CommProofRecord &R = Report.Comm[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "      {\"grid\": \"" << R.PI << "x" << R.PJ << "\", \"ranks\": "
       << R.PI * R.PJ << ", \"kind\": \"" << R.Kind << "\", \"ops\": "
       << static_cast<long long>(R.Ops) << ", \"ok\": " << R.Ok;
    if (!R.Witness.empty()) {
      OS << ", \"witness\": ";
      writeJsonString(OS, R.Witness);
    }
    OS << "}";
  }
  OS << (Report.Comm.empty() ? "],\n" : "\n    ],\n");
  OS << "    \"comm_mutants\": [";
  for (size_t I = 0; I != Report.CommMutants.size(); ++I) {
    const CommMutantRecord &R = Report.CommMutants[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "      {\"mutant\": ";
    writeJsonString(OS, R.Mutant);
    OS << ", \"caught\": " << R.Caught << "}";
  }
  OS << (Report.CommMutants.empty() ? "]\n" : "\n    ]\n");
  OS << "  },\n";

  OS << "  \"mutation\": {\n";
  OS << "    \"classes\": [";
  for (size_t I = 0; I != Report.Mutation.size(); ++I) {
    const MutationClassRecord &R = Report.Mutation[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "      {\"class\": \"" << mutantClassName(R.Class)
       << "\", \"kill_id\": \"" << mutantKillIdPrefix(R.Class)
       << "\", \"mutants\": " << R.Mutants << ", \"killed\": " << R.Killed
       << "}";
  }
  OS << (Report.Mutation.empty() ? "],\n" : "\n    ],\n");
  OS << "    \"kill_rate\": " << Report.killRate() << "\n";
  OS << "  },\n";

  OS << "  \"summary\": {\n";
  OS << "    \"plans\": "
     << static_cast<unsigned long long>(Report.Plans.size()) << ",\n";
  OS << "    \"proved\": "
     << static_cast<unsigned long long>(Report.numWithVerdict("proved"))
     << ",\n";
  OS << "    \"pruned\": "
     << static_cast<unsigned long long>(Report.numWithVerdict("pruned"))
     << ",\n";
  OS << "    \"violated\": "
     << static_cast<unsigned long long>(Report.numWithVerdict("violated"))
     << ",\n";
  OS << "    \"protocol_ok\": " << Report.protocolOk() << ",\n";
  OS << "    \"kill_rate\": " << Report.killRate() << ",\n";
  OS << "    \"ok\": " << Report.ok() << "\n";
  OS << "  }\n";
  OS << "}\n";
}

bool icores::writeProveJsonFile(const ProofReport &Report,
                                const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  {
    FileOStream OS(F);
    writeProveJson(Report, OS);
  }
  std::fclose(F);
  return true;
}
