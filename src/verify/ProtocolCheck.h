//===- verify/ProtocolCheck.h - Synchronization model checking -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded explicit-state model checking of the runtime's two
/// synchronization protocols.
///
/// TeamBarrier: the arity-4 combining-tree sense-reversal barrier
/// (exec/TeamBarrier.cpp) is modeled transition-for-transition — per-node
/// arrival counters, the root's seq_cst epoch-publish-then-sleepers-check,
/// and the hybrid waiter's spin / register / atomic-recheck / futex-block
/// ladder — and every interleaving of up to 8 threads over multiple
/// crossings is explored by breadth-first search. The checked property is
/// deadlock freedom: no reachable non-terminal state without an enabled
/// transition. A lost wakeup (sleeper blocked on a stale epoch with no
/// notifier left) manifests exactly as such a state, so the property
/// covers both "no deadlock" and "no lost wakeup". Two seeded model
/// mutants re-introduce the classic bugs — notifying before publishing
/// the epoch, and blocking without the atomic re-check — and must be
/// caught, proving the checker can see the failure class at all.
///
/// RankComm: per-rank send/recv/barrier schedules (dist/CommSchedule.h)
/// are executed symbolically. Sends are buffered, so greedy execution is
/// confluent: if the greedy run completes, every interleaving does. The
/// checker proves no cyclic wait (a blocked non-empty frontier), no
/// orphaned message (undelivered payloads at termination), and matched
/// payload sizes; under a world-poisoning transition (any single rank
/// dying at any op) every surviving rank must still terminate.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_VERIFY_PROTOCOLCHECK_H
#define ICORES_VERIFY_PROTOCOLCHECK_H

#include "dist/CommSchedule.h"

#include <cstdint>
#include <string>
#include <vector>

namespace icores {

class DiagnosticEngine;

/// Model configuration for one barrier exploration.
struct BarrierModelOptions {
  int NumThreads = 4;
  /// Barrier crossings each thread performs (>= 2 exercises epoch reuse).
  int Crossings = 2;
  /// Spurious-wakeup budget: how many times blocked sleepers may be woken
  /// without an epoch advance (models chaos notifies and the futex spec's
  /// spurious returns). 0 proves no-lost-wakeup strictly.
  int SpuriousBudget = 0;
  /// Explored-state cap; exceeding it fails the check explicitly rather
  /// than silently truncating the proof.
  int64_t MaxStates = 4000000;
  /// Seeded model mutants (each must be *caught* by the checker).
  bool MutantNotifyBeforePublish = false;
  bool MutantBlockWithoutRecheck = false;
};

struct BarrierCheckResult {
  bool Ok = false;
  bool Deadlock = false;
  bool StateCapHit = false;
  int64_t StatesExplored = 0;
  /// Human-readable witness of the first deadlock state, empty when Ok.
  std::string Witness;
};

/// Explores every interleaving of the barrier model; reports
/// protocol.barrier.deadlock / protocol.barrier.state-cap findings.
BarrierCheckResult checkTeamBarrierProtocol(const BarrierModelOptions &Opts,
                                            DiagnosticEngine &Diags);

struct CommCheckResult {
  bool Ok = false;
  bool Deadlock = false;
  int64_t OpsExecuted = 0;
  int64_t OrphanedMessages = 0;
  std::string Witness;
};

/// Symbolically executes \p Schedules (one per rank, dense rank ids).
/// \p DeadRank >= 0 kills that rank before its op \p DeathOp and poisons
/// the world, after which blocked ops fail fast instead of waiting —
/// every surviving rank must still terminate. Orphans are only an error
/// in the no-death run (a dead rank legitimately strands messages).
/// Reports protocol.comm.deadlock / protocol.comm.orphan-message /
/// protocol.comm.size-mismatch findings.
CommCheckResult checkCommSchedule(const std::vector<RankCommSchedule> &Schedules,
                                  DiagnosticEngine &Diags, int DeadRank = -1,
                                  int DeathOp = 0);

} // namespace icores

#endif // ICORES_VERIFY_PROTOCOLCHECK_H
