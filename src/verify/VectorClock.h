//===- verify/VectorClock.h - Happens-before vector clocks -----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-width vector clock over worker indices, the ordering primitive
/// of the shadow race detector (verify/ShadowStore.h). Each worker W owns
/// component W; crossing a barrier merges the participants' clocks and
/// then advances each participant's own component, so two accesses are
/// ordered exactly when a chain of barrier crossings separates them.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_VERIFY_VECTORCLOCK_H
#define ICORES_VERIFY_VECTORCLOCK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icores {

class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(int NumWorkers)
      : Ticks(static_cast<size_t>(NumWorkers), 0) {}

  int size() const { return static_cast<int>(Ticks.size()); }

  /// Grows to at least \p NumWorkers components (new ones start at 0).
  void ensureSize(int NumWorkers);

  /// The value of component \p Worker (0 when beyond the current size).
  uint64_t get(int Worker) const;

  void set(int Worker, uint64_t Value);

  /// Advances component \p Worker by one.
  void tick(int Worker) { set(Worker, get(Worker) + 1); }

  /// Component-wise maximum with \p Other.
  void merge(const VectorClock &Other);

  /// Whether an event at scalar time \p Time on worker \p Worker
  /// happens-before the point this clock describes.
  bool covers(int Worker, uint64_t Time) const {
    return get(Worker) >= Time;
  }

private:
  std::vector<uint64_t> Ticks;
};

} // namespace icores

#endif // ICORES_VERIFY_VECTORCLOCK_H
