//===- verify/ProtocolCheck.cpp - Synchronization model checking ----------===//

#include "verify/ProtocolCheck.h"

#include "support/Diagnostics.h"
#include "support/Format.h"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>
#include <unordered_set>

using namespace icores;

//===----------------------------------------------------------------------===//
// TeamBarrier model
//===----------------------------------------------------------------------===//

namespace {

/// Thread phases of the modeled arriveAndWait. The model mirrors
/// exec/TeamBarrier.cpp one atomic action per transition:
///
///   Sig         about to fetch_sub the current node's Pending counter;
///               the last arriver resets the node and ascends (reset and
///               ascent are exact to coarsen: no thread can revisit the
///               node before the epoch publishes).
///   RootPub     about to Epoch.fetch_add(1) (root only).
///   RootNotify  about to load Sleepers and notify_all the blocked.
///   SpinCheck   spinning on Epoch; gives up nondeterministically, which
///               is the seq_cst Sleepers registration boundary.
///   RecheckA    registered; about to re-load Epoch (the `while` head).
///   WaitEntry   about to run Epoch.wait(Seen)'s atomic compare.
///   Blocked     parked in the futex; only a notify moves it.
///   Dereg       released; about to Sleepers.fetch_sub(1).
///   Done        finished all crossings (terminal).
///
/// A thread's Seen epoch equals its crossing index: the epoch cannot
/// advance past crossing c until every thread has decremented in
/// crossing c, so the initial load is deterministic.
enum Phase : uint8_t {
  Sig,
  RootPub,
  RootNotify,
  SpinCheck,
  RecheckA,
  WaitEntry,
  Blocked,
  Dereg,
  Done,
};

const char *phaseName(Phase P) {
  switch (P) {
  case Sig:
    return "signal";
  case RootPub:
    return "root-publish";
  case RootNotify:
    return "root-notify";
  case SpinCheck:
    return "spin";
  case RecheckA:
    return "recheck";
  case WaitEntry:
    return "wait-entry";
  case Blocked:
    return "blocked";
  case Dereg:
    return "deregister";
  case Done:
    return "done";
  }
  return "?";
}

constexpr int Arity = 4; // TeamBarrier::Arity.

int ceilDiv(int A, int B) { return (A + B - 1) / B; }

/// The combining tree exactly as TeamBarrier's constructor wires it.
struct BarrierTree {
  std::vector<int> Total;
  std::vector<int> Parent;

  explicit BarrierTree(int NumThreads) {
    int LevelBegin = 0;
    int LevelSize = ceilDiv(std::max(1, NumThreads), Arity);
    int ChildCount = NumThreads;
    for (;;) {
      for (int I = 0; I != LevelSize; ++I) {
        Total.push_back(std::min(Arity, ChildCount - I * Arity));
        Parent.push_back(LevelSize == 1 ? -1
                                        : LevelBegin + LevelSize + I / Arity);
      }
      if (LevelSize == 1)
        break;
      LevelBegin += LevelSize;
      ChildCount = LevelSize;
      LevelSize = ceilDiv(LevelSize, Arity);
    }
  }

  int numNodes() const { return static_cast<int>(Total.size()); }
};

/// Packed model state: [Epoch, SpuriousLeft, Pending..., (Phase, Node,
/// Crossing) per thread]. Small enough to key a hash set directly.
struct ModelState {
  std::string Bytes;

  static ModelState initial(const BarrierTree &Tree, int NumThreads,
                            int SpuriousBudget) {
    ModelState S;
    S.Bytes.resize(static_cast<size_t>(2 + Tree.numNodes() + 3 * NumThreads));
    S.Bytes[0] = 0; // Epoch
    S.Bytes[1] = static_cast<char>(SpuriousBudget);
    for (int N = 0; N != Tree.numNodes(); ++N)
      S.Bytes[static_cast<size_t>(2 + N)] = static_cast<char>(Tree.Total[N]);
    for (int T = 0; T != NumThreads; ++T) {
      S.setPhase(Tree, NumThreads, T, Sig);
      S.setNode(Tree, T, T / Arity);
      S.setCrossing(Tree, NumThreads, T, 0);
    }
    return S;
  }

  uint8_t epoch() const { return static_cast<uint8_t>(Bytes[0]); }
  void setEpoch(uint8_t E) { Bytes[0] = static_cast<char>(E); }
  uint8_t spuriousLeft() const { return static_cast<uint8_t>(Bytes[1]); }
  void setSpuriousLeft(uint8_t S) { Bytes[1] = static_cast<char>(S); }

  uint8_t pending(int Node) const {
    return static_cast<uint8_t>(Bytes[static_cast<size_t>(2 + Node)]);
  }
  void setPending(int Node, uint8_t P) {
    Bytes[static_cast<size_t>(2 + Node)] = static_cast<char>(P);
  }

  size_t threadBase(const BarrierTree &Tree, int T) const {
    return static_cast<size_t>(2 + Tree.numNodes() + 3 * T);
  }
  Phase phase(const BarrierTree &Tree, int T) const {
    return static_cast<Phase>(Bytes[threadBase(Tree, T)]);
  }
  void setPhase(const BarrierTree &Tree, int /*NumThreads*/, int T, Phase P) {
    Bytes[threadBase(Tree, T)] = static_cast<char>(P);
  }
  uint8_t node(const BarrierTree &Tree, int T) const {
    return static_cast<uint8_t>(Bytes[threadBase(Tree, T) + 1]);
  }
  void setNode(const BarrierTree &Tree, int T, int N) {
    Bytes[threadBase(Tree, T) + 1] = static_cast<char>(N);
  }
  uint8_t crossing(const BarrierTree &Tree, int T) const {
    return static_cast<uint8_t>(Bytes[threadBase(Tree, T) + 2]);
  }
  void setCrossing(const BarrierTree &Tree, int /*NumThreads*/, int T,
                   int C) {
    Bytes[threadBase(Tree, T) + 2] = static_cast<char>(C);
  }
};

struct BarrierModel {
  const BarrierModelOptions &Opts;
  BarrierTree Tree;

  explicit BarrierModel(const BarrierModelOptions &AOpts)
      : Opts(AOpts), Tree(AOpts.NumThreads) {}

  /// The real Sleepers counter is derived: a thread contributes from its
  /// (modeled-atomic) registration until its deregistration.
  int sleepers(const ModelState &S) const {
    int Count = 0;
    for (int T = 0; T != Opts.NumThreads; ++T) {
      Phase P = S.phase(Tree, T);
      if (P == RecheckA || P == WaitEntry || P == Blocked || P == Dereg)
        ++Count;
    }
    return Count;
  }

  bool terminal(const ModelState &S) const {
    for (int T = 0; T != Opts.NumThreads; ++T)
      if (S.phase(Tree, T) != Done)
        return false;
    return true;
  }

  void advanceCrossing(ModelState &S, int T) const {
    int C = S.crossing(Tree, T) + 1;
    S.setCrossing(Tree, Opts.NumThreads, T, C);
    if (C == Opts.Crossings) {
      S.setPhase(Tree, Opts.NumThreads, T, Done);
    } else {
      S.setPhase(Tree, Opts.NumThreads, T, Sig);
      S.setNode(Tree, T, T / Arity);
    }
  }

  void wakeBlocked(ModelState &S) const {
    for (int T = 0; T != Opts.NumThreads; ++T)
      if (S.phase(Tree, T) == Blocked)
        S.setPhase(Tree, Opts.NumThreads, T, RecheckA);
  }

  /// All successor states of \p S (self-loops like fruitless spins are
  /// not emitted; they never change the state).
  std::vector<ModelState> successors(const ModelState &S) const {
    std::vector<ModelState> Out;
    for (int T = 0; T != Opts.NumThreads; ++T) {
      Phase P = S.phase(Tree, T);
      uint8_t Seen = S.crossing(Tree, T);
      switch (P) {
      case Sig: {
        ModelState N = S;
        int Node = S.node(Tree, T);
        uint8_t Pend = S.pending(Node);
        if (Pend > 1) {
          N.setPending(Node, Pend - 1);
          N.setPhase(Tree, Opts.NumThreads, T, SpinCheck);
        } else {
          // Last arriver: reset the node and carry the signal upward (no
          // other thread can touch this node before the epoch publishes).
          N.setPending(Node, static_cast<uint8_t>(Tree.Total[Node]));
          int Parent = Tree.Parent[Node];
          if (Parent >= 0) {
            N.setNode(Tree, T, Parent);
          } else {
            N.setPhase(Tree, Opts.NumThreads, T,
                       Opts.MutantNotifyBeforePublish ? RootNotify
                                                      : RootPub);
          }
        }
        Out.push_back(std::move(N));
        break;
      }
      case RootPub: {
        ModelState N = S;
        N.setEpoch(S.epoch() + 1);
        N.setPhase(Tree, Opts.NumThreads, T,
                   Opts.MutantNotifyBeforePublish ? SpinCheck : RootNotify);
        Out.push_back(std::move(N));
        break;
      }
      case RootNotify: {
        ModelState N = S;
        if (sleepers(S) != 0)
          wakeBlocked(N);
        N.setPhase(Tree, Opts.NumThreads, T,
                   Opts.MutantNotifyBeforePublish ? RootPub : SpinCheck);
        Out.push_back(std::move(N));
        break;
      }
      case SpinCheck: {
        ModelState N = S;
        if (S.epoch() != Seen) {
          advanceCrossing(N, T);
        } else {
          // Give up spinning: the seq_cst Sleepers registration. The
          // "spin again" outcome is a self-loop and emits nothing.
          N.setPhase(Tree, Opts.NumThreads, T, RecheckA);
        }
        Out.push_back(std::move(N));
        break;
      }
      case RecheckA: {
        ModelState N = S;
        N.setPhase(Tree, Opts.NumThreads, T,
                   S.epoch() != Seen ? Dereg : WaitEntry);
        Out.push_back(std::move(N));
        break;
      }
      case WaitEntry: {
        ModelState N = S;
        if (Opts.MutantBlockWithoutRecheck)
          N.setPhase(Tree, Opts.NumThreads, T, Blocked);
        else
          N.setPhase(Tree, Opts.NumThreads, T,
                     S.epoch() != Seen ? RecheckA : Blocked);
        Out.push_back(std::move(N));
        break;
      }
      case Dereg: {
        ModelState N = S;
        advanceCrossing(N, T);
        Out.push_back(std::move(N));
        break;
      }
      case Blocked:
      case Done:
        break; // No own transition.
      }
    }
    if (S.spuriousLeft() > 0) {
      bool AnyBlocked = false;
      for (int T = 0; T != Opts.NumThreads && !AnyBlocked; ++T)
        AnyBlocked = S.phase(Tree, T) == Blocked;
      if (AnyBlocked) {
        ModelState N = S;
        wakeBlocked(N);
        N.setSpuriousLeft(S.spuriousLeft() - 1);
        Out.push_back(std::move(N));
      }
    }
    return Out;
  }

  std::string describe(const ModelState &S) const {
    std::string Desc = formatString("epoch=%d", static_cast<int>(S.epoch()));
    for (int T = 0; T != Opts.NumThreads; ++T)
      Desc += formatString(
          " t%d=%s@c%d", T, phaseName(S.phase(Tree, T)),
          static_cast<int>(S.crossing(Tree, T)));
    return Desc;
  }
};

} // namespace

BarrierCheckResult
icores::checkTeamBarrierProtocol(const BarrierModelOptions &Opts,
                                 DiagnosticEngine &Diags) {
  BarrierModel Model(Opts);
  BarrierCheckResult Result;

  std::unordered_set<std::string> Visited;
  std::deque<ModelState> Frontier;
  ModelState Init =
      ModelState::initial(Model.Tree, Opts.NumThreads, Opts.SpuriousBudget);
  Visited.insert(Init.Bytes);
  Frontier.push_back(std::move(Init));

  while (!Frontier.empty()) {
    ModelState S = std::move(Frontier.front());
    Frontier.pop_front();
    ++Result.StatesExplored;
    if (Result.StatesExplored > Opts.MaxStates) {
      Result.StateCapHit = true;
      Diags.report(Severity::Error, "protocol.barrier.state-cap",
                   formatString("barrier model exceeded %lld states "
                                "(%d threads, %d crossings)",
                                static_cast<long long>(Opts.MaxStates),
                                Opts.NumThreads, Opts.Crossings));
      return Result;
    }
    std::vector<ModelState> Next = Model.successors(S);
    if (Next.empty() && !Model.terminal(S)) {
      Result.Deadlock = true;
      Result.Witness = Model.describe(S);
      Diags
          .report(Severity::Error, "protocol.barrier.deadlock",
                  formatString("barrier deadlock with %d threads: lost "
                               "wakeup or stuck arrival",
                               Opts.NumThreads))
          .note("state", Result.Witness)
          .note("crossings", std::to_string(Opts.Crossings));
      return Result;
    }
    for (ModelState &N : Next)
      if (Visited.insert(N.Bytes).second)
        Frontier.push_back(std::move(N));
  }
  Result.Ok = true;
  return Result;
}

//===----------------------------------------------------------------------===//
// RankComm schedule checking
//===----------------------------------------------------------------------===//

CommCheckResult
icores::checkCommSchedule(const std::vector<RankCommSchedule> &Schedules,
                          DiagnosticEngine &Diags, int DeadRank,
                          int DeathOp) {
  CommCheckResult Result;
  size_t NumRanks = Schedules.size();

  // FIFO mailboxes keyed (source, destination, tag), as RankComm keys
  // them; payloads reduce to their double counts.
  std::map<std::tuple<int, int, int>, std::deque<int64_t>> Channels;
  std::vector<size_t> Pos(NumRanks, 0);
  std::vector<bool> Dead(NumRanks, false);
  std::vector<bool> Errored(NumRanks, false);
  bool Poisoned = false;

  auto finished = [&](size_t R) {
    return Dead[R] || Errored[R] || Pos[R] == Schedules[R].Ops.size();
  };

  // Greedy execution: buffered sends make the op system confluent, so if
  // the greedy run drains every rank, every real interleaving does too;
  // if it wedges, the blocked frontier is a genuine cyclic (or orphaned)
  // wait. Barriers release only when every live unfinished rank is at one.
  bool Progress = true;
  while (Progress) {
    Progress = false;

    // Rank death is itself a transition: at its death op the rank stops
    // and poisons the world (runDistributedMpdataChaos poisons before
    // reporting), after which blocked peers fail fast.
    if (DeadRank >= 0 && !Dead[static_cast<size_t>(DeadRank)] &&
        Pos[static_cast<size_t>(DeadRank)] ==
            static_cast<size_t>(DeathOp)) {
      Dead[static_cast<size_t>(DeadRank)] = true;
      Poisoned = true;
      Progress = true;
      continue;
    }

    // Barrier release check.
    bool AllAtBarrier = true;
    int AtBarrier = 0;
    for (size_t R = 0; R != NumRanks; ++R) {
      if (finished(R))
        continue;
      if (Schedules[R].Ops[Pos[R]].K == CommOp::Kind::Barrier)
        ++AtBarrier;
      else
        AllAtBarrier = false;
    }
    if (AtBarrier > 0 && AllAtBarrier) {
      for (size_t R = 0; R != NumRanks; ++R)
        if (!finished(R)) {
          ++Pos[R];
          ++Result.OpsExecuted;
        }
      Progress = true;
      continue;
    }

    for (size_t R = 0; R != NumRanks; ++R) {
      while (!finished(R)) {
        const CommOp &Op = Schedules[R].Ops[Pos[R]];
        if (DeadRank == static_cast<int>(R) &&
            Pos[R] == static_cast<size_t>(DeathOp))
          break; // Handled by the death transition above.
        if (Op.K == CommOp::Kind::Send) {
          Channels[{static_cast<int>(R), Op.Peer, Op.Tag}].push_back(
              Op.Count);
          ++Pos[R];
          ++Result.OpsExecuted;
          Progress = true;
          continue;
        }
        if (Op.K == CommOp::Kind::Recv) {
          auto It = Channels.find({Op.Peer, static_cast<int>(R), Op.Tag});
          if (It != Channels.end() && !It->second.empty()) {
            int64_t Count = It->second.front();
            It->second.pop_front();
            if (Count != Op.Count)
              Diags
                  .report(Severity::Error, "protocol.comm.size-mismatch",
                          formatString("rank %zu recv(%d, tag %d) expects "
                                       "%lld doubles, message has %lld",
                                       R, Op.Peer, Op.Tag,
                                       static_cast<long long>(Op.Count),
                                       static_cast<long long>(Count)))
                  .note("rank", std::to_string(R));
            ++Pos[R];
            ++Result.OpsExecuted;
            Progress = true;
            continue;
          }
          if (Poisoned) {
            // RankComm::recv raises once the world is poisoned instead
            // of waiting forever; the rank terminates with an error.
            Errored[R] = true;
            Progress = true;
          }
          break; // Blocked (or errored out).
        }
        // Barrier: released collectively above; fail fast when poisoned.
        if (Poisoned) {
          Errored[R] = true;
          Progress = true;
        }
        break;
      }
    }
  }

  bool AnyBlocked = false;
  for (size_t R = 0; R != NumRanks; ++R) {
    if (finished(R))
      continue;
    AnyBlocked = true;
    const CommOp &Op = Schedules[R].Ops[Pos[R]];
    Result.Witness += formatString(
        "rank %zu blocked at op %zu (%s peer %d tag %d); ", R, Pos[R],
        Op.K == CommOp::Kind::Recv ? "recv" : "barrier", Op.Peer, Op.Tag);
  }
  if (AnyBlocked) {
    Result.Deadlock = true;
    Diags
        .report(Severity::Error, "protocol.comm.deadlock",
                "communication schedule wedges: cyclic or unmatched wait")
        .note("blocked", Result.Witness);
  }

  for (const auto &[Key, Queue] : Channels)
    Result.OrphanedMessages += static_cast<int64_t>(Queue.size());
  if (Result.OrphanedMessages > 0 && DeadRank < 0)
    Diags.report(Severity::Error, "protocol.comm.orphan-message",
                 formatString("%lld messages were sent but never received",
                              static_cast<long long>(
                                  Result.OrphanedMessages)));

  Result.Ok = !Result.Deadlock &&
              (DeadRank >= 0 || Result.OrphanedMessages == 0) &&
              !Diags.hasFinding("protocol.comm.size-mismatch");
  return Result;
}
