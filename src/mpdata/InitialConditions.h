//===- mpdata/InitialConditions.h - Workload generators ---------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Initial scalar fields and velocity configurations for MPDATA runs:
/// Gaussian tracer blobs, random positive fields, constant-Courant and
/// discretely divergence-free rotational velocity fields, plus error norms
/// against analytic solutions.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_MPDATA_INITIALCONDITIONS_H
#define ICORES_MPDATA_INITIALCONDITIONS_H

#include "grid/Array3D.h"
#include "grid/Domain.h"

#include <cstdint>

namespace icores {

/// Parameters of a periodic Gaussian tracer blob.
struct GaussianBlob {
  double CenterI = 0.0;
  double CenterJ = 0.0;
  double CenterK = 0.0;
  double Sigma = 4.0;
  double Amplitude = 1.0;
  double Background = 0.1;

  /// Analytic value at cell (I, J, K) on a periodic NI x NJ x NK grid
  /// (nearest periodic image per dimension).
  double valueAt(double I, double J, double K, const Domain &D) const;

  /// Returns this blob translated by (DI, DJ, DK) cells (periodic).
  GaussianBlob translated(double DI, double DJ, double DK) const;
};

/// Fills the core region of \p A with the blob (halo untouched).
void fillGaussian(Array3D &A, const Domain &D, const GaussianBlob &Blob);

/// Fills the core region with deterministic pseudo-random values in
/// [Lo, Hi); Lo must be >= 0 to keep MPDATA's positivity assumptions.
void fillRandomPositive(Array3D &A, const Domain &D, uint64_t Seed, double Lo,
                        double Hi);

/// Sets all three Courant-number arrays to spatially constant values.
/// Stability requires |C1| + |C2| + |C3| <= 1.
void setConstantVelocity(Array3D &U1, Array3D &U2, Array3D &U3,
                         const Domain &D, double C1, double C2, double C3);

/// Solid-body rotation in the i-j plane about (CenterI, CenterJ):
/// discretely divergence-free on the staggered mesh. \p Omega is the
/// angular Courant number per cell of radius.
void setRotationalVelocity(Array3D &U1, Array3D &U2, Array3D &U3,
                           const Domain &D, double Omega, double CenterI,
                           double CenterJ);

/// L2 norm of (A - Blob) over the core region, normalized by cell count.
double l2ErrorVsBlob(const Array3D &A, const Domain &D,
                     const GaussianBlob &Blob);

/// Maximum absolute deviation of A from Blob over the core region.
double linfErrorVsBlob(const Array3D &A, const Domain &D,
                       const GaussianBlob &Blob);

} // namespace icores

#endif // ICORES_MPDATA_INITIALCONDITIONS_H
