//===- mpdata/MpdataProgram.cpp - 17-stage MPDATA stencil program --------===//

#include "mpdata/MpdataProgram.h"

#include "support/Error.h"

#include <string>

using namespace icores;

MpdataProgram icores::buildMpdataProgram() {
  MpdataProgram M;
  StencilProgram &P = M.Program;

  M.XIn = P.addArray("xIn", ArrayRole::StepInput);
  M.U1 = P.addArray("u1", ArrayRole::StepInput);
  M.U2 = P.addArray("u2", ArrayRole::StepInput);
  M.U3 = P.addArray("u3", ArrayRole::StepInput);
  M.H = P.addArray("h", ArrayRole::StepInput);

  M.F1 = P.addArray("f1", ArrayRole::Intermediate);
  M.F2 = P.addArray("f2", ArrayRole::Intermediate);
  M.F3 = P.addArray("f3", ArrayRole::Intermediate);
  M.Actual = P.addArray("actual", ArrayRole::Intermediate);
  M.Mx = P.addArray("mx", ArrayRole::Intermediate);
  M.Mn = P.addArray("mn", ArrayRole::Intermediate);
  M.V1 = P.addArray("v1", ArrayRole::Intermediate);
  M.V2 = P.addArray("v2", ArrayRole::Intermediate);
  M.V3 = P.addArray("v3", ArrayRole::Intermediate);
  M.Cp = P.addArray("cp", ArrayRole::Intermediate);
  M.Cn = P.addArray("cn", ArrayRole::Intermediate);
  M.V1m = P.addArray("v1m", ArrayRole::Intermediate);
  M.V2m = P.addArray("v2m", ArrayRole::Intermediate);
  M.V3m = P.addArray("v3m", ArrayRole::Intermediate);
  M.G1 = P.addArray("g1", ArrayRole::Intermediate);
  M.G2 = P.addArray("g2", ArrayRole::Intermediate);
  M.G3 = P.addArray("g3", ArrayRole::Intermediate);

  M.XOut = P.addArray("xOut", ArrayRole::StepOutput);

  // S1..S3: donor-cell fluxes of xIn. f<d>(p) is the flux through the
  // lower face of cell p in dimension d, so it reads xIn at offsets
  // {-1, 0} along d and the face velocity at the centre.
  auto addFluxStage = [&](const char *Name, ArrayId Out, ArrayId Vel,
                          int Dim) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::alongDim(M.XIn, Dim, -1, 0),
                StageInput::center(Vel)};
    S.FlopsPerPoint = 5;
    return P.addStage(std::move(S));
  };
  M.SFlux1 = addFluxStage("flux1", M.F1, M.U1, 0);
  M.SFlux2 = addFluxStage("flux2", M.F2, M.U2, 1);
  M.SFlux3 = addFluxStage("flux3", M.F3, M.U3, 2);

  // S4: upwind update. Flux divergence reads each flux at offsets {0, +1}
  // along its own dimension.
  {
    StageDef S;
    S.Name = "upwind";
    S.Outputs = {M.Actual};
    S.Inputs = {StageInput::center(M.XIn),
                StageInput::alongDim(M.F1, 0, 0, 1),
                StageInput::alongDim(M.F2, 1, 0, 1),
                StageInput::alongDim(M.F3, 2, 0, 1),
                StageInput::center(M.H)};
    S.FlopsPerPoint = 7;
    M.SUpwind = P.addStage(std::move(S));
  }

  // S5: fused local min/max over the 7-point cross of xIn and actual.
  // One loop producing both limiter-bound arrays (this fusion is what
  // makes the step count 17 rather than 18).
  {
    StageDef S;
    S.Name = "minmax";
    S.Outputs = {M.Mx, M.Mn};
    S.Inputs = {StageInput::box1(M.XIn), StageInput::box1(M.Actual)};
    S.FlopsPerPoint = 26;
    M.SMinMax = P.addStage(std::move(S));
  }

  // S6..S8: antidiffusive pseudo-velocities. v<d> lives on the lower face
  // along d; it reads actual at {-1,0} along d and +/-1 across the two
  // transverse dimensions, plus the two transverse face velocities.
  auto addVelStage = [&](const char *Name, ArrayId Out, int Dim, ArrayId VelD,
                         ArrayId VelT1, int DimT1, ArrayId VelT2, int DimT2) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    StageInput ActualIn = StageInput::box1(M.Actual);
    ActualIn.MaxOff[Dim] = 0; // {-1, 0} along the stage's own dimension.
    StageInput T1 = StageInput::center(VelT1);
    T1.MinOff[Dim] = -1;
    T1.MaxOff[DimT1] = 1;
    StageInput T2 = StageInput::center(VelT2);
    T2.MinOff[Dim] = -1;
    T2.MaxOff[DimT2] = 1;
    S.Inputs = {ActualIn, StageInput::center(VelD), T1, T2};
    S.FlopsPerPoint = 40;
    return P.addStage(std::move(S));
  };
  M.SVel1 = addVelStage("pseudoVel1", M.V1, 0, M.U1, M.U2, 1, M.U3, 2);
  M.SVel2 = addVelStage("pseudoVel2", M.V2, 1, M.U2, M.U1, 0, M.U3, 2);
  M.SVel3 = addVelStage("pseudoVel3", M.V3, 2, M.U3, M.U1, 0, M.U2, 1);

  // S9: cp — ratio of allowed to actual inflow per cell. Inflow gathers
  // upwind neighbours of actual (+/-1 cross) and faces {0,+1} of each
  // pseudo-velocity.
  {
    StageDef S;
    S.Name = "cp";
    S.Outputs = {M.Cp};
    S.Inputs = {StageInput::center(M.Mx), StageInput::box1(M.Actual),
                StageInput::center(M.H),
                StageInput::alongDim(M.V1, 0, 0, 1),
                StageInput::alongDim(M.V2, 1, 0, 1),
                StageInput::alongDim(M.V3, 2, 0, 1)};
    S.FlopsPerPoint = 22;
    M.SCp = P.addStage(std::move(S));
  }

  // S10: cn — ratio of allowed to actual outflow; outflow depends on the
  // centre value of actual only.
  {
    StageDef S;
    S.Name = "cn";
    S.Outputs = {M.Cn};
    S.Inputs = {StageInput::center(M.Mn), StageInput::center(M.Actual),
                StageInput::center(M.H),
                StageInput::alongDim(M.V1, 0, 0, 1),
                StageInput::alongDim(M.V2, 1, 0, 1),
                StageInput::alongDim(M.V3, 2, 0, 1)};
    S.FlopsPerPoint = 20;
    M.SCn = P.addStage(std::move(S));
  }

  // S11..S13: non-oscillatory limiting of the pseudo-velocities. The face
  // value combines cp/cn of the two adjacent cells along the stage's
  // dimension.
  auto addLimitStage = [&](const char *Name, ArrayId Out, ArrayId Vel,
                           int Dim) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::alongDim(M.Cp, Dim, -1, 0),
                StageInput::alongDim(M.Cn, Dim, -1, 0),
                StageInput::center(Vel)};
    S.FlopsPerPoint = 9;
    return P.addStage(std::move(S));
  };
  M.SLim1 = addLimitStage("limitVel1", M.V1m, M.V1, 0);
  M.SLim2 = addLimitStage("limitVel2", M.V2m, M.V2, 1);
  M.SLim3 = addLimitStage("limitVel3", M.V3m, M.V3, 2);

  // S14..S16: corrected donor-cell fluxes of actual.
  auto addGFluxStage = [&](const char *Name, ArrayId Out, ArrayId Vel,
                           int Dim) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::alongDim(M.Actual, Dim, -1, 0),
                StageInput::center(Vel)};
    S.FlopsPerPoint = 5;
    return P.addStage(std::move(S));
  };
  M.SGFlux1 = addGFluxStage("gflux1", M.G1, M.V1m, 0);
  M.SGFlux2 = addGFluxStage("gflux2", M.G2, M.V2m, 1);
  M.SGFlux3 = addGFluxStage("gflux3", M.G3, M.V3m, 2);

  // S17: final corrected update.
  {
    StageDef S;
    S.Name = "output";
    S.Outputs = {M.XOut};
    S.Inputs = {StageInput::center(M.Actual),
                StageInput::alongDim(M.G1, 0, 0, 1),
                StageInput::alongDim(M.G2, 1, 0, 1),
                StageInput::alongDim(M.G3, 2, 0, 1),
                StageInput::center(M.H)};
    S.FlopsPerPoint = 7;
    M.SOut = P.addStage(std::move(S));
  }

  P.addFeedback(M.XOut, M.XIn);

  std::string Error;
  ICORES_CHECK(P.validate(Error), "MPDATA program failed validation");
  ICORES_CHECK(P.numStages() == 17, "MPDATA must have exactly 17 stages");
  return M;
}
