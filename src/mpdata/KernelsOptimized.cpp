//===- mpdata/KernelsOptimized.cpp - Strided-pointer MPDATA kernels -------===//
//
// The production kernel path: identical floating-point expression order to
// the reference kernels in Kernels.cpp (bit-for-bit equal results,
// property-tested), but with per-row raw pointers and contiguous inner
// k-loops so the compiler can vectorize. The dimension-generic kernels
// take the neighbour offset as an element stride.
//
//===----------------------------------------------------------------------===//

#include "stencil/FieldStore.h"
#include "mpdata/Kernels.h"
#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace icores;

namespace {

/// Element stride of a +1 step along \p Dim in array \p A.
int64_t strideOf(const Array3D &A, int Dim) {
  switch (Dim) {
  case 0:
    return A.strideI();
  case 1:
    return A.strideJ();
  case 2:
    return 1;
  }
  ICORES_UNREACHABLE("bad dimension");
}

/// Runs \p Body(I, J) for every (i, j) row of \p Region; the body handles
/// the contiguous k-extent itself.
template <typename Fn> void forRows(const Box3 &Region, Fn &&Body) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      Body(I, J);
}

/// S1..S3 and S14..S16: donor-cell flux along Dim.
void fluxOpt(const Array3D &X, const Array3D &U, Array3D &F, int Dim,
             const Box3 &Region) {
  int64_t Back = strideOf(X, Dim);
  int NK = Region.extent(2);
  forRows(Region, [&](int I, int J) {
    const double *XP = X.pointerTo(I, J, Region.Lo[2]);
    const double *XL = XP - Back;
    const double *UP = U.pointerTo(I, J, Region.Lo[2]);
    double *FP = F.pointerTo(I, J, Region.Lo[2]);
    for (int K = 0; K != NK; ++K)
      FP[K] = std::max(UP[K], 0.0) * XL[K] + std::min(UP[K], 0.0) * XP[K];
  });
}

/// S4 and S17: flux-divergence update.
void fluxDivergenceOpt(const Array3D &In, const Array3D &F1,
                       const Array3D &F2, const Array3D &F3,
                       const Array3D &H, Array3D &Out, const Box3 &Region) {
  int NK = Region.extent(2);
  forRows(Region, [&](int I, int J) {
    const double *InP = In.pointerTo(I, J, Region.Lo[2]);
    const double *F1P = F1.pointerTo(I, J, Region.Lo[2]);
    const double *F1N = F1.pointerTo(I + 1, J, Region.Lo[2]);
    const double *F2P = F2.pointerTo(I, J, Region.Lo[2]);
    const double *F2N = F2.pointerTo(I, J + 1, Region.Lo[2]);
    const double *F3P = F3.pointerTo(I, J, Region.Lo[2]);
    const double *HP = H.pointerTo(I, J, Region.Lo[2]);
    double *OutP = Out.pointerTo(I, J, Region.Lo[2]);
    for (int K = 0; K != NK; ++K) {
      double Div = F1N[K] - F1P[K] + F2N[K] - F2P[K] + F3P[K + 1] - F3P[K];
      OutP[K] = InP[K] - Div / HP[K];
    }
  });
}

/// S5: fused extrema. Matches the reference's evaluation sequence:
/// centre, then dims 0..2 with offsets -1, +1.
void minMaxOpt(const Array3D &X, const Array3D &Act, Array3D &Mx,
               Array3D &Mn, const Box3 &Region) {
  int NK = Region.extent(2);
  int64_t OffX[3] = {X.strideI(), X.strideJ(), 1};
  int64_t OffA[3] = {Act.strideI(), Act.strideJ(), 1};
  forRows(Region, [&](int I, int J) {
    const double *XP = X.pointerTo(I, J, Region.Lo[2]);
    const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
    double *MxP = Mx.pointerTo(I, J, Region.Lo[2]);
    double *MnP = Mn.pointerTo(I, J, Region.Lo[2]);
    for (int K = 0; K != NK; ++K) {
      double Max = std::max(XP[K], AP[K]);
      double Min = std::min(XP[K], AP[K]);
      for (int D = 0; D != 3; ++D) {
        for (int Sign = -1; Sign <= 1; Sign += 2) {
          int64_t DX = Sign * OffX[D];
          int64_t DA = Sign * OffA[D];
          Max = std::max(Max, std::max(XP[K + DX], AP[K + DA]));
          Min = std::min(Min, std::min(XP[K + DX], AP[K + DA]));
        }
      }
      MxP[K] = Max;
      MnP[K] = Min;
    }
  });
}

/// S6..S8: antidiffusive pseudo-velocity along Dim.
void pseudoVelocityOpt(const Array3D &Act, const Array3D &UD,
                       const Array3D &UT1, int DimT1, const Array3D &UT2,
                       int DimT2, Array3D &V, int Dim, const Box3 &Region) {
  int NK = Region.extent(2);
  int64_t ABack = strideOf(Act, Dim);
  int64_t AT1 = strideOf(Act, DimT1);
  int64_t AT2 = strideOf(Act, DimT2);
  int64_t U1Back = strideOf(UT1, Dim);
  int64_t U1Fwd = strideOf(UT1, DimT1);
  int64_t U2Back = strideOf(UT2, Dim);
  int64_t U2Fwd = strideOf(UT2, DimT2);
  forRows(Region, [&](int I, int J) {
    const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
    const double *CP = UD.pointerTo(I, J, Region.Lo[2]);
    const double *T1 = UT1.pointerTo(I, J, Region.Lo[2]);
    const double *T2 = UT2.pointerTo(I, J, Region.Lo[2]);
    double *VP = V.pointerTo(I, J, Region.Lo[2]);
    for (int K = 0; K != NK; ++K) {
      double C = CP[K];
      double Right = AP[K];
      double Left = AP[K - ABack];
      double A = (Right - Left) / (Right + Left + MpdataEps);

      // Transverse average/gradient 1 — same summation order as the
      // reference (A = -1 then 0; B = 0 then 1; Up before Dn).
      double Avg1 = 0.25 * (T1[K - U1Back] + T1[K - U1Back + U1Fwd] +
                            T1[K] + T1[K + U1Fwd]);
      double Up1 = AP[K + AT1] + AP[K - ABack + AT1];
      double Dn1 = AP[K - AT1] + AP[K - ABack - AT1];
      double Grad1 = 0.5 * (Up1 - Dn1) / (Up1 + Dn1 + MpdataEps);
      double Cross1 = C * Avg1 * Grad1;

      double Avg2 = 0.25 * (T2[K - U2Back] + T2[K - U2Back + U2Fwd] +
                            T2[K] + T2[K + U2Fwd]);
      double Up2 = AP[K + AT2] + AP[K - ABack + AT2];
      double Dn2 = AP[K - AT2] + AP[K - ABack - AT2];
      double Grad2 = 0.5 * (Up2 - Dn2) / (Up2 + Dn2 + MpdataEps);
      double Cross2 = C * Avg2 * Grad2;

      VP[K] = (std::fabs(C) - C * C) * A - Cross1 - Cross2;
    }
  });
}

/// S9: cp. The reference accumulates In over dims 0..2 in order.
void cpOpt(const Array3D &Mx, const Array3D &Act, const Array3D &H,
           const Array3D &V1, const Array3D &V2, const Array3D &V3,
           Array3D &Cp, const Box3 &Region) {
  int NK = Region.extent(2);
  int64_t AOff[3] = {Act.strideI(), Act.strideJ(), 1};
  const Array3D *V[3] = {&V1, &V2, &V3};
  forRows(Region, [&](int I, int J) {
    const double *MxP = Mx.pointerTo(I, J, Region.Lo[2]);
    const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
    const double *HP = H.pointerTo(I, J, Region.Lo[2]);
    const double *VP[3];
    int64_t VFwd[3];
    for (int D = 0; D != 3; ++D) {
      VP[D] = V[D]->pointerTo(I, J, Region.Lo[2]);
      VFwd[D] = strideOf(*V[D], D);
    }
    for (int K = 0; K != NK; ++K) {
      double In = 0.0;
      for (int D = 0; D != 3; ++D) {
        In += std::max(VP[D][K], 0.0) * AP[K - AOff[D]];
        In -= std::min(VP[D][K + VFwd[D]], 0.0) * AP[K + AOff[D]];
      }
      Cp.pointerTo(I, J, Region.Lo[2])[K] =
          (MxP[K] - AP[K]) * HP[K] / (In + MpdataEps);
    }
  });
}

/// S10: cn.
void cnOpt(const Array3D &Mn, const Array3D &Act, const Array3D &H,
           const Array3D &V1, const Array3D &V2, const Array3D &V3,
           Array3D &Cn, const Box3 &Region) {
  int NK = Region.extent(2);
  const Array3D *V[3] = {&V1, &V2, &V3};
  forRows(Region, [&](int I, int J) {
    const double *MnP = Mn.pointerTo(I, J, Region.Lo[2]);
    const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
    const double *HP = H.pointerTo(I, J, Region.Lo[2]);
    const double *VP[3];
    int64_t VFwd[3];
    for (int D = 0; D != 3; ++D) {
      VP[D] = V[D]->pointerTo(I, J, Region.Lo[2]);
      VFwd[D] = strideOf(*V[D], D);
    }
    double *CnP = Cn.pointerTo(I, J, Region.Lo[2]);
    for (int K = 0; K != NK; ++K) {
      double Center = AP[K];
      double Out = 0.0;
      for (int D = 0; D != 3; ++D) {
        Out += std::max(VP[D][K + VFwd[D]], 0.0) * Center;
        Out -= std::min(VP[D][K], 0.0) * Center;
      }
      CnP[K] = (Center - MnP[K]) * HP[K] / (Out + MpdataEps);
    }
  });
}

/// S11..S13: non-oscillatory limiting along Dim.
void limitOpt(const Array3D &Cp, const Array3D &Cn, const Array3D &V,
              Array3D &Vm, int Dim, const Box3 &Region) {
  int NK = Region.extent(2);
  int64_t CpBack = strideOf(Cp, Dim);
  int64_t CnBack = strideOf(Cn, Dim);
  forRows(Region, [&](int I, int J) {
    const double *CpP = Cp.pointerTo(I, J, Region.Lo[2]);
    const double *CnP = Cn.pointerTo(I, J, Region.Lo[2]);
    const double *VP = V.pointerTo(I, J, Region.Lo[2]);
    double *VmP = Vm.pointerTo(I, J, Region.Lo[2]);
    for (int K = 0; K != NK; ++K) {
      double PosScale = std::min(1.0, std::min(CpP[K], CnP[K - CnBack]));
      double NegScale = std::min(1.0, std::min(CpP[K - CpBack], CnP[K]));
      VmP[K] = PosScale * std::max(VP[K], 0.0) +
               NegScale * std::min(VP[K], 0.0);
    }
  });
}

} // namespace

void icores::runMpdataStageOptimized(const MpdataProgram &M,
                                     FieldStore &Fields, StageId Stage,
                                     const Box3 &Region) {
  if (Region.empty())
    return;
  FieldStore &F = Fields;
  if (Stage == M.SFlux1) {
    fluxOpt(F.get(M.XIn), F.get(M.U1), F.get(M.F1), 0, Region);
  } else if (Stage == M.SFlux2) {
    fluxOpt(F.get(M.XIn), F.get(M.U2), F.get(M.F2), 1, Region);
  } else if (Stage == M.SFlux3) {
    fluxOpt(F.get(M.XIn), F.get(M.U3), F.get(M.F3), 2, Region);
  } else if (Stage == M.SUpwind) {
    fluxDivergenceOpt(F.get(M.XIn), F.get(M.F1), F.get(M.F2), F.get(M.F3),
                      F.get(M.H), F.get(M.Actual), Region);
  } else if (Stage == M.SMinMax) {
    minMaxOpt(F.get(M.XIn), F.get(M.Actual), F.get(M.Mx), F.get(M.Mn),
              Region);
  } else if (Stage == M.SVel1) {
    pseudoVelocityOpt(F.get(M.Actual), F.get(M.U1), F.get(M.U2), 1,
                      F.get(M.U3), 2, F.get(M.V1), 0, Region);
  } else if (Stage == M.SVel2) {
    pseudoVelocityOpt(F.get(M.Actual), F.get(M.U2), F.get(M.U1), 0,
                      F.get(M.U3), 2, F.get(M.V2), 1, Region);
  } else if (Stage == M.SVel3) {
    pseudoVelocityOpt(F.get(M.Actual), F.get(M.U3), F.get(M.U1), 0,
                      F.get(M.U2), 1, F.get(M.V3), 2, Region);
  } else if (Stage == M.SCp) {
    cpOpt(F.get(M.Mx), F.get(M.Actual), F.get(M.H), F.get(M.V1),
          F.get(M.V2), F.get(M.V3), F.get(M.Cp), Region);
  } else if (Stage == M.SCn) {
    cnOpt(F.get(M.Mn), F.get(M.Actual), F.get(M.H), F.get(M.V1),
          F.get(M.V2), F.get(M.V3), F.get(M.Cn), Region);
  } else if (Stage == M.SLim1) {
    limitOpt(F.get(M.Cp), F.get(M.Cn), F.get(M.V1), F.get(M.V1m), 0,
             Region);
  } else if (Stage == M.SLim2) {
    limitOpt(F.get(M.Cp), F.get(M.Cn), F.get(M.V2), F.get(M.V2m), 1,
             Region);
  } else if (Stage == M.SLim3) {
    limitOpt(F.get(M.Cp), F.get(M.Cn), F.get(M.V3), F.get(M.V3m), 2,
             Region);
  } else if (Stage == M.SGFlux1) {
    fluxOpt(F.get(M.Actual), F.get(M.V1m), F.get(M.G1), 0, Region);
  } else if (Stage == M.SGFlux2) {
    fluxOpt(F.get(M.Actual), F.get(M.V2m), F.get(M.G2), 1, Region);
  } else if (Stage == M.SGFlux3) {
    fluxOpt(F.get(M.Actual), F.get(M.V3m), F.get(M.G3), 2, Region);
  } else if (Stage == M.SOut) {
    fluxDivergenceOpt(F.get(M.Actual), F.get(M.G1), F.get(M.G2),
                      F.get(M.G3), F.get(M.H), F.get(M.XOut), Region);
  } else {
    ICORES_UNREACHABLE("unknown MPDATA stage id");
  }
}
