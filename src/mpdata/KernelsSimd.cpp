//===- mpdata/KernelsSimd.cpp - Vectorization-shaped MPDATA kernels -------===//
//
// The third kernel backend: identical floating-point expression order to
// Kernels.cpp / KernelsOptimized.cpp (bit-for-bit equal results,
// property-tested by the variant-equality and strategy-equivalence
// suites), restructured so the compiler auto-vectorizes every inner
// k-loop:
//
//  * every array pointer — including the output — is hoisted out of the
//    k-loop to a row pointer computed once per (i, j);
//  * the output pointers are __restrict-qualified, which is sound because
//    the stencil IR validator structurally rejects stages that read an
//    array they also write, so stores never alias the loads;
//  * the short dimension loops of the minMax/cp/cn kernels are unrolled
//    by hand (a variable-stride gather loop defeats vectorizers);
//  * loop nests are plain for-loops — no lambdas on the hot path — and
//    each k-loop is annotated with ICORES_SIMD_LOOP so the CI
//    vectorization check can pin a -Rpass=loop-vectorize remark to it.
//
// This TU is compiled with -ffp-contract=off (see src/mpdata/
// CMakeLists.txt) so FMA contraction can never perturb results relative
// to the other two variants. No fast-math anywhere.
//
//===----------------------------------------------------------------------===//

#include "mpdata/Kernels.h"
#include "stencil/FieldStore.h"
#include "support/Error.h"

#include <algorithm>
#include <cmath>

// Marks a k-inner loop that must vectorize. On clang the pragma makes the
// loop report through -Rpass=loop-vectorize (and fail the build under
// -Werror=pass-failed when it does not vectorize); GCC gets the
// equivalent no-loop-carried-dependence assertion. Both are semantically
// safe here: outputs never alias inputs (see file header).
#if defined(__clang__)
#define ICORES_SIMD_LOOP _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define ICORES_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define ICORES_SIMD_LOOP
#endif

using namespace icores;

namespace {

/// Element stride of a +1 step along \p Dim in array \p A.
int64_t strideOf(const Array3D &A, int Dim) {
  switch (Dim) {
  case 0:
    return A.strideI();
  case 1:
    return A.strideJ();
  case 2:
    return 1;
  }
  ICORES_UNREACHABLE("bad dimension");
}

/// S1..S3 and S14..S16: donor-cell flux along Dim.
void fluxSimd(const Array3D &X, const Array3D &U, Array3D &F, int Dim,
              const Box3 &Region) {
  const int64_t Back = strideOf(X, Dim);
  const int NK = Region.extent(2);
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J) {
      const double *XP = X.pointerTo(I, J, Region.Lo[2]);
      const double *XL = XP - Back;
      const double *UP = U.pointerTo(I, J, Region.Lo[2]);
      double *__restrict FP = F.pointerTo(I, J, Region.Lo[2]);
      ICORES_SIMD_LOOP
      for (int K = 0; K != NK; ++K)
        FP[K] = std::max(UP[K], 0.0) * XL[K] + std::min(UP[K], 0.0) * XP[K];
    }
}

/// S4 and S17: flux-divergence update.
void fluxDivergenceSimd(const Array3D &In, const Array3D &F1,
                        const Array3D &F2, const Array3D &F3,
                        const Array3D &H, Array3D &Out, const Box3 &Region) {
  const int NK = Region.extent(2);
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J) {
      const double *InP = In.pointerTo(I, J, Region.Lo[2]);
      const double *F1P = F1.pointerTo(I, J, Region.Lo[2]);
      const double *F1N = F1.pointerTo(I + 1, J, Region.Lo[2]);
      const double *F2P = F2.pointerTo(I, J, Region.Lo[2]);
      const double *F2N = F2.pointerTo(I, J + 1, Region.Lo[2]);
      const double *F3P = F3.pointerTo(I, J, Region.Lo[2]);
      const double *HP = H.pointerTo(I, J, Region.Lo[2]);
      double *__restrict OutP = Out.pointerTo(I, J, Region.Lo[2]);
      ICORES_SIMD_LOOP
      for (int K = 0; K != NK; ++K) {
        double Div =
            F1N[K] - F1P[K] + F2N[K] - F2P[K] + F3P[K + 1] - F3P[K];
        OutP[K] = InP[K] - Div / HP[K];
      }
    }
}

/// S5: fused extrema. Matches the reference's evaluation sequence
/// (centre, then dims 0..2 with offsets -1, +1) with the neighbour loop
/// unrolled to twelve fixed-stride loads.
void minMaxSimd(const Array3D &X, const Array3D &Act, Array3D &Mx,
                Array3D &Mn, const Box3 &Region) {
  const int NK = Region.extent(2);
  const int64_t XI = X.strideI(), XJ = X.strideJ();
  const int64_t AI = Act.strideI(), AJ = Act.strideJ();
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J) {
      const double *XP = X.pointerTo(I, J, Region.Lo[2]);
      const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
      double *__restrict MxP = Mx.pointerTo(I, J, Region.Lo[2]);
      double *__restrict MnP = Mn.pointerTo(I, J, Region.Lo[2]);
      ICORES_SIMD_LOOP
      for (int K = 0; K != NK; ++K) {
        double Max = std::max(XP[K], AP[K]);
        double Min = std::min(XP[K], AP[K]);
        Max = std::max(Max, std::max(XP[K - XI], AP[K - AI]));
        Min = std::min(Min, std::min(XP[K - XI], AP[K - AI]));
        Max = std::max(Max, std::max(XP[K + XI], AP[K + AI]));
        Min = std::min(Min, std::min(XP[K + XI], AP[K + AI]));
        Max = std::max(Max, std::max(XP[K - XJ], AP[K - AJ]));
        Min = std::min(Min, std::min(XP[K - XJ], AP[K - AJ]));
        Max = std::max(Max, std::max(XP[K + XJ], AP[K + AJ]));
        Min = std::min(Min, std::min(XP[K + XJ], AP[K + AJ]));
        Max = std::max(Max, std::max(XP[K - 1], AP[K - 1]));
        Min = std::min(Min, std::min(XP[K - 1], AP[K - 1]));
        Max = std::max(Max, std::max(XP[K + 1], AP[K + 1]));
        Min = std::min(Min, std::min(XP[K + 1], AP[K + 1]));
        MxP[K] = Max;
        MnP[K] = Min;
      }
    }
}

/// S6..S8: antidiffusive pseudo-velocity along Dim.
void pseudoVelocitySimd(const Array3D &Act, const Array3D &UD,
                        const Array3D &UT1, int DimT1, const Array3D &UT2,
                        int DimT2, Array3D &V, int Dim, const Box3 &Region) {
  const int NK = Region.extent(2);
  const int64_t ABack = strideOf(Act, Dim);
  const int64_t AT1 = strideOf(Act, DimT1);
  const int64_t AT2 = strideOf(Act, DimT2);
  const int64_t U1Back = strideOf(UT1, Dim);
  const int64_t U1Fwd = strideOf(UT1, DimT1);
  const int64_t U2Back = strideOf(UT2, Dim);
  const int64_t U2Fwd = strideOf(UT2, DimT2);
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J) {
      const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
      const double *CP = UD.pointerTo(I, J, Region.Lo[2]);
      const double *T1 = UT1.pointerTo(I, J, Region.Lo[2]);
      const double *T2 = UT2.pointerTo(I, J, Region.Lo[2]);
      double *__restrict VP = V.pointerTo(I, J, Region.Lo[2]);
      ICORES_SIMD_LOOP
      for (int K = 0; K != NK; ++K) {
        double C = CP[K];
        double Right = AP[K];
        double Left = AP[K - ABack];
        double A = (Right - Left) / (Right + Left + MpdataEps);

        // Transverse average/gradient — same summation order as the
        // reference (A = -1 then 0; B = 0 then 1; Up before Dn).
        double Avg1 = 0.25 * (T1[K - U1Back] + T1[K - U1Back + U1Fwd] +
                              T1[K] + T1[K + U1Fwd]);
        double Up1 = AP[K + AT1] + AP[K - ABack + AT1];
        double Dn1 = AP[K - AT1] + AP[K - ABack - AT1];
        double Grad1 = 0.5 * (Up1 - Dn1) / (Up1 + Dn1 + MpdataEps);
        double Cross1 = C * Avg1 * Grad1;

        double Avg2 = 0.25 * (T2[K - U2Back] + T2[K - U2Back + U2Fwd] +
                              T2[K] + T2[K + U2Fwd]);
        double Up2 = AP[K + AT2] + AP[K - ABack + AT2];
        double Dn2 = AP[K - AT2] + AP[K - ABack - AT2];
        double Grad2 = 0.5 * (Up2 - Dn2) / (Up2 + Dn2 + MpdataEps);
        double Cross2 = C * Avg2 * Grad2;

        VP[K] = (std::fabs(C) - C * C) * A - Cross1 - Cross2;
      }
    }
}

/// S9: cp. The reference accumulates In over dims 0..2 in order; the
/// dimension loop is unrolled so every load has a fixed stride.
void cpSimd(const Array3D &Mx, const Array3D &Act, const Array3D &H,
            const Array3D &V1, const Array3D &V2, const Array3D &V3,
            Array3D &Cp, const Box3 &Region) {
  const int NK = Region.extent(2);
  const int64_t AI = Act.strideI(), AJ = Act.strideJ();
  const int64_t V1F = V1.strideI();
  const int64_t V2F = V2.strideJ();
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J) {
      const double *MxP = Mx.pointerTo(I, J, Region.Lo[2]);
      const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
      const double *HP = H.pointerTo(I, J, Region.Lo[2]);
      const double *V1P = V1.pointerTo(I, J, Region.Lo[2]);
      const double *V2P = V2.pointerTo(I, J, Region.Lo[2]);
      const double *V3P = V3.pointerTo(I, J, Region.Lo[2]);
      double *__restrict CpP = Cp.pointerTo(I, J, Region.Lo[2]);
      ICORES_SIMD_LOOP
      for (int K = 0; K != NK; ++K) {
        double In = 0.0;
        In += std::max(V1P[K], 0.0) * AP[K - AI];
        In -= std::min(V1P[K + V1F], 0.0) * AP[K + AI];
        In += std::max(V2P[K], 0.0) * AP[K - AJ];
        In -= std::min(V2P[K + V2F], 0.0) * AP[K + AJ];
        In += std::max(V3P[K], 0.0) * AP[K - 1];
        In -= std::min(V3P[K + 1], 0.0) * AP[K + 1];
        CpP[K] = (MxP[K] - AP[K]) * HP[K] / (In + MpdataEps);
      }
    }
}

/// S10: cn.
void cnSimd(const Array3D &Mn, const Array3D &Act, const Array3D &H,
            const Array3D &V1, const Array3D &V2, const Array3D &V3,
            Array3D &Cn, const Box3 &Region) {
  const int NK = Region.extent(2);
  const int64_t V1F = V1.strideI();
  const int64_t V2F = V2.strideJ();
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J) {
      const double *MnP = Mn.pointerTo(I, J, Region.Lo[2]);
      const double *AP = Act.pointerTo(I, J, Region.Lo[2]);
      const double *HP = H.pointerTo(I, J, Region.Lo[2]);
      const double *V1P = V1.pointerTo(I, J, Region.Lo[2]);
      const double *V2P = V2.pointerTo(I, J, Region.Lo[2]);
      const double *V3P = V3.pointerTo(I, J, Region.Lo[2]);
      double *__restrict CnP = Cn.pointerTo(I, J, Region.Lo[2]);
      ICORES_SIMD_LOOP
      for (int K = 0; K != NK; ++K) {
        double Center = AP[K];
        double Out = 0.0;
        Out += std::max(V1P[K + V1F], 0.0) * Center;
        Out -= std::min(V1P[K], 0.0) * Center;
        Out += std::max(V2P[K + V2F], 0.0) * Center;
        Out -= std::min(V2P[K], 0.0) * Center;
        Out += std::max(V3P[K + 1], 0.0) * Center;
        Out -= std::min(V3P[K], 0.0) * Center;
        CnP[K] = (Center - MnP[K]) * HP[K] / (Out + MpdataEps);
      }
    }
}

/// S11..S13: non-oscillatory limiting along Dim.
void limitSimd(const Array3D &Cp, const Array3D &Cn, const Array3D &V,
               Array3D &Vm, int Dim, const Box3 &Region) {
  const int NK = Region.extent(2);
  const int64_t CpBack = strideOf(Cp, Dim);
  const int64_t CnBack = strideOf(Cn, Dim);
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J) {
      const double *CpP = Cp.pointerTo(I, J, Region.Lo[2]);
      const double *CnP = Cn.pointerTo(I, J, Region.Lo[2]);
      const double *VP = V.pointerTo(I, J, Region.Lo[2]);
      double *__restrict VmP = Vm.pointerTo(I, J, Region.Lo[2]);
      ICORES_SIMD_LOOP
      for (int K = 0; K != NK; ++K) {
        double PosScale = std::min(1.0, std::min(CpP[K], CnP[K - CnBack]));
        double NegScale = std::min(1.0, std::min(CpP[K - CpBack], CnP[K]));
        VmP[K] = PosScale * std::max(VP[K], 0.0) +
                 NegScale * std::min(VP[K], 0.0);
      }
    }
}

} // namespace

void icores::runMpdataStageSimd(const MpdataProgram &M, FieldStore &Fields,
                                StageId Stage, const Box3 &Region) {
  if (Region.empty())
    return;
  FieldStore &F = Fields;
  if (Stage == M.SFlux1) {
    fluxSimd(F.get(M.XIn), F.get(M.U1), F.get(M.F1), 0, Region);
  } else if (Stage == M.SFlux2) {
    fluxSimd(F.get(M.XIn), F.get(M.U2), F.get(M.F2), 1, Region);
  } else if (Stage == M.SFlux3) {
    fluxSimd(F.get(M.XIn), F.get(M.U3), F.get(M.F3), 2, Region);
  } else if (Stage == M.SUpwind) {
    fluxDivergenceSimd(F.get(M.XIn), F.get(M.F1), F.get(M.F2), F.get(M.F3),
                       F.get(M.H), F.get(M.Actual), Region);
  } else if (Stage == M.SMinMax) {
    minMaxSimd(F.get(M.XIn), F.get(M.Actual), F.get(M.Mx), F.get(M.Mn),
               Region);
  } else if (Stage == M.SVel1) {
    pseudoVelocitySimd(F.get(M.Actual), F.get(M.U1), F.get(M.U2), 1,
                       F.get(M.U3), 2, F.get(M.V1), 0, Region);
  } else if (Stage == M.SVel2) {
    pseudoVelocitySimd(F.get(M.Actual), F.get(M.U2), F.get(M.U1), 0,
                       F.get(M.U3), 2, F.get(M.V2), 1, Region);
  } else if (Stage == M.SVel3) {
    pseudoVelocitySimd(F.get(M.Actual), F.get(M.U3), F.get(M.U1), 0,
                       F.get(M.U2), 1, F.get(M.V3), 2, Region);
  } else if (Stage == M.SCp) {
    cpSimd(F.get(M.Mx), F.get(M.Actual), F.get(M.H), F.get(M.V1),
           F.get(M.V2), F.get(M.V3), F.get(M.Cp), Region);
  } else if (Stage == M.SCn) {
    cnSimd(F.get(M.Mn), F.get(M.Actual), F.get(M.H), F.get(M.V1),
           F.get(M.V2), F.get(M.V3), F.get(M.Cn), Region);
  } else if (Stage == M.SLim1) {
    limitSimd(F.get(M.Cp), F.get(M.Cn), F.get(M.V1), F.get(M.V1m), 0,
              Region);
  } else if (Stage == M.SLim2) {
    limitSimd(F.get(M.Cp), F.get(M.Cn), F.get(M.V2), F.get(M.V2m), 1,
              Region);
  } else if (Stage == M.SLim3) {
    limitSimd(F.get(M.Cp), F.get(M.Cn), F.get(M.V3), F.get(M.V3m), 2,
              Region);
  } else if (Stage == M.SGFlux1) {
    fluxSimd(F.get(M.Actual), F.get(M.V1m), F.get(M.G1), 0, Region);
  } else if (Stage == M.SGFlux2) {
    fluxSimd(F.get(M.Actual), F.get(M.V2m), F.get(M.G2), 1, Region);
  } else if (Stage == M.SGFlux3) {
    fluxSimd(F.get(M.Actual), F.get(M.V3m), F.get(M.G3), 2, Region);
  } else if (Stage == M.SOut) {
    fluxDivergenceSimd(F.get(M.Actual), F.get(M.G1), F.get(M.G2),
                       F.get(M.G3), F.get(M.H), F.get(M.XOut), Region);
  } else {
    ICORES_UNREACHABLE("unknown MPDATA stage id");
  }
}
