//===- mpdata/Kernels.h - MPDATA stage compute kernels ----------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar reference kernels for the 17 MPDATA stages. Each kernel evaluates
/// one stage over an arbitrary Box3 region of a FieldStore; the access
/// pattern of every kernel is exactly the pattern declared for that stage
/// in the stencil IR (property-tested in tests/mpdata via NaN poisoning).
///
/// Kernels are pointwise with a fixed evaluation order and no reductions,
/// so results are bit-identical regardless of how a region is partitioned
/// among threads, blocks or islands — the foundation of the strategy
/// equivalence tests.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_MPDATA_KERNELS_H
#define ICORES_MPDATA_KERNELS_H

#include "grid/Box3.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/KernelTable.h"

namespace icores {

class FieldStore;

// KernelVariant (Reference / Optimized / Simd) lives in
// stencil/KernelTable.h so backend-agnostic layers can name a variant
// without linking this library. All variants produce bit-identical
// results: identical floating-point expression order per element.

/// Evaluates stage \p Stage of \p M over \p Region using the arrays in
/// \p Fields. All arrays read/written must cover the regions implied by the
/// stage's declared access pattern.
void runMpdataStage(const MpdataProgram &M, FieldStore &Fields, StageId Stage,
                    const Box3 &Region,
                    KernelVariant Variant = KernelVariant::Reference);

/// Implementation detail of the Optimized variant, exposed for direct
/// benchmarking; behaves exactly like runMpdataStage(..., Optimized).
void runMpdataStageOptimized(const MpdataProgram &M, FieldStore &Fields,
                             StageId Stage, const Box3 &Region);

/// Implementation detail of the Simd variant (contiguous __restrict
/// k-inner loops shaped for auto-vectorization), exposed for direct
/// benchmarking; behaves exactly like runMpdataStage(..., Simd).
void runMpdataStageSimd(const MpdataProgram &M, FieldStore &Fields,
                        StageId Stage, const Box3 &Region);

/// Builds the stage-kernel table binding the 17 MPDATA stages to the
/// chosen kernel implementation, for use with the generic runtimes
/// (SerialStepper, ProgramExecutor).
KernelTable buildMpdataKernels(KernelVariant Variant =
                                   KernelVariant::Reference);

} // namespace icores

#endif // ICORES_MPDATA_KERNELS_H
