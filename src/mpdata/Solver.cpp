//===- mpdata/Solver.cpp - Reference MPDATA time-stepping -----------------===//

#include "mpdata/Solver.h"

#include "mpdata/Kernels.h"
#include "support/Error.h"

#include <algorithm>
#include <utility>

using namespace icores;

int icores::mpdataHaloDepth() {
  MpdataProgram M = buildMpdataProgram();
  // Use a target comfortably larger than the cone so the probe does not
  // clip; the depth is size-independent.
  std::array<int, 3> Depth =
      inputHaloDepth(M.Program, Box3::fromExtents(64, 64, 64));
  ICORES_CHECK(Depth[0] == Depth[1] && Depth[1] == Depth[2],
               "MPDATA halo depth expected to be isotropic");
  return Depth[0];
}

ReferenceSolver::ReferenceSolver(int NI, int NJ, int NK, SolverOptions Options)
    : M(buildMpdataProgram()), Dom(NI, NJ, NK, mpdataHaloDepth(), Options.Boundary),
      Req(computeRequirements(M.Program, Dom.coreBox())), Opts(Options),
      Intermediates(M.Program.numArrays()) {
  // All arrays share the vector-padded layout so every (i, j, ·) row is
  // cache-line aligned regardless of the kernel variant chosen.
  Box3 Alloc = Dom.allocBox();
  State.reset(Alloc, Array3D::VectorPadK);
  Next.reset(Alloc, Array3D::VectorPadK);
  Dens.reset(Alloc, Array3D::VectorPadK);
  Dens.fill(1.0);
  for (Array3D &Vel : U)
    Vel.reset(Alloc, Array3D::VectorPadK);

  Intermediates.bindExternal(M.XIn, &State);
  Intermediates.bindExternal(M.U1, &U[0]);
  Intermediates.bindExternal(M.U2, &U[1]);
  Intermediates.bindExternal(M.U3, &U[2]);
  Intermediates.bindExternal(M.H, &Dens);
  Intermediates.bindExternal(M.XOut, &Next);
  for (unsigned A = 0; A != M.Program.numArrays(); ++A) {
    if (M.Program.array(static_cast<ArrayId>(A)).Role ==
        ArrayRole::Intermediate)
      Intermediates.allocateOwned(static_cast<ArrayId>(A), Alloc,
                                  Array3D::VectorPadK);
  }
}

Array3D &ReferenceSolver::velocity(int Dim) {
  ICORES_CHECK(Dim >= 0 && Dim < 3, "velocity dimension out of range");
  return U[Dim];
}

void ReferenceSolver::prepareCoefficients() {
  for (Array3D &Vel : U)
    Dom.fillHalo(Vel);
  Dom.fillHalo(Dens);
}

void ReferenceSolver::step() {
  Dom.fillHalo(State);

  unsigned LastStage =
      Opts.FirstOrderOnly ? static_cast<unsigned>(M.SUpwind) + 1
                          : M.Program.numStages();
  for (unsigned S = 0; S != LastStage; ++S)
    runMpdataStage(M, Intermediates, static_cast<StageId>(S),
                   Req.StageRegion[S], Opts.Kernels);

  if (Opts.FirstOrderOnly)
    Next.copyRegionFrom(Intermediates.get(M.Actual), Dom.coreBox());

  std::swap(State, Next);
}

void ReferenceSolver::run(int Steps) {
  ICORES_CHECK(Steps >= 0, "negative step count");
  for (int S = 0; S != Steps; ++S)
    step();
}

double ReferenceSolver::conservedMass() const {
  Box3 Core = Dom.coreBox();
  double Mass = 0.0;
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        Mass += Dens.at(I, J, K) * State.at(I, J, K);
  return Mass;
}
