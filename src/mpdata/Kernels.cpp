//===- mpdata/Kernels.cpp - MPDATA stage compute kernels ------------------===//

#include "mpdata/Kernels.h"

#include "stencil/FieldStore.h"
#include "support/Error.h"

#include <algorithm>
#include <memory>
#include <cmath>

using namespace icores;

namespace {

/// Point in index space, mutated by the dimension-generic kernels.
using Pt = std::array<int, 3>;

double get(const Array3D &A, Pt P) { return A.at(P[0], P[1], P[2]); }

double getOff(const Array3D &A, Pt P, int Dim, int Off) {
  P[Dim] += Off;
  return A.at(P[0], P[1], P[2]);
}

/// Donor-cell (first-order upwind) flux through a face with velocity U,
/// left state L and right state R.
double donorFlux(double L, double R, double U) {
  return std::max(U, 0.0) * L + std::min(U, 0.0) * R;
}

/// Visits every point of \p Region in (i, j, k) order.
template <typename Fn> void forRegion(const Box3 &Region, Fn &&Body) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        Body(Pt{I, J, K});
}

/// S1..S3: F(p) = donor(x(p - e_d), x(p), u_d(p)).
void kernelFlux(const Array3D &X, const Array3D &U, Array3D &F, int Dim,
                const Box3 &Region) {
  forRegion(Region, [&](Pt P) {
    F.at(P[0], P[1], P[2]) =
        donorFlux(getOff(X, P, Dim, -1), get(X, P), get(U, P));
  });
}

/// S4 and S17: Out = In - (sum_d F_d(p + e_d) - F_d(p)) / h(p).
void kernelFluxDivergence(const Array3D &In, const Array3D &F1,
                          const Array3D &F2, const Array3D &F3,
                          const Array3D &H, Array3D &Out,
                          const Box3 &Region) {
  forRegion(Region, [&](Pt P) {
    double Div = getOff(F1, P, 0, 1) - get(F1, P) + getOff(F2, P, 1, 1) -
                 get(F2, P) + getOff(F3, P, 2, 1) - get(F3, P);
    Out.at(P[0], P[1], P[2]) = get(In, P) - Div / get(H, P);
  });
}

/// S5: fused 7-point-cross extrema of xIn and actual.
void kernelMinMax(const Array3D &X, const Array3D &Act, Array3D &Mx,
                  Array3D &Mn, const Box3 &Region) {
  forRegion(Region, [&](Pt P) {
    double Max = std::max(get(X, P), get(Act, P));
    double Min = std::min(get(X, P), get(Act, P));
    for (int D = 0; D != 3; ++D) {
      for (int Off = -1; Off <= 1; Off += 2) {
        Max = std::max(Max, std::max(getOff(X, P, D, Off),
                                     getOff(Act, P, D, Off)));
        Min = std::min(Min, std::min(getOff(X, P, D, Off),
                                     getOff(Act, P, D, Off)));
      }
    }
    Mx.at(P[0], P[1], P[2]) = Max;
    Mn.at(P[0], P[1], P[2]) = Min;
  });
}

/// Average of the transverse face velocity UT (normal to DimT) over the
/// four faces adjacent to the Dim-face at P.
double transverseAvg(const Array3D &UT, Pt P, int Dim, int DimT) {
  Pt Q = P;
  double Sum = 0.0;
  for (int A = -1; A <= 0; ++A) {
    for (int B = 0; B <= 1; ++B) {
      Q = P;
      Q[Dim] += A;
      Q[DimT] += B;
      Sum += UT.at(Q[0], Q[1], Q[2]);
    }
  }
  return 0.25 * Sum;
}

/// Normalized transverse gradient of Act across DimT at the Dim-face at P.
double transverseGradient(const Array3D &Act, Pt P, int Dim, int DimT) {
  Pt Q = P;
  auto ActAt = [&](int DD, int DT) {
    Q = P;
    Q[Dim] += DD;
    Q[DimT] += DT;
    return Act.at(Q[0], Q[1], Q[2]);
  };
  double Up = ActAt(0, 1) + ActAt(-1, 1);
  double Dn = ActAt(0, -1) + ActAt(-1, -1);
  return 0.5 * (Up - Dn) / (Up + Dn + MpdataEps);
}

/// S6..S8: antidiffusive pseudo-velocity on the lower Dim-face.
void kernelPseudoVelocity(const Array3D &Act, const Array3D &UD,
                          const Array3D &UT1, int DimT1, const Array3D &UT2,
                          int DimT2, Array3D &V, int Dim,
                          const Box3 &Region) {
  forRegion(Region, [&](Pt P) {
    double C = get(UD, P);
    double Right = get(Act, P);
    double Left = getOff(Act, P, Dim, -1);
    double A = (Right - Left) / (Right + Left + MpdataEps);
    double Cross1 = C * transverseAvg(UT1, P, Dim, DimT1) *
                    transverseGradient(Act, P, Dim, DimT1);
    double Cross2 = C * transverseAvg(UT2, P, Dim, DimT2) *
                    transverseGradient(Act, P, Dim, DimT2);
    V.at(P[0], P[1], P[2]) =
        (std::fabs(C) - C * C) * A - Cross1 - Cross2;
  });
}

/// S9: cp = (mx - actual) * h / (inflow + eps).
void kernelCp(const Array3D &Mx, const Array3D &Act, const Array3D &H,
              const Array3D &V1, const Array3D &V2, const Array3D &V3,
              Array3D &Cp, const Box3 &Region) {
  const Array3D *V[3] = {&V1, &V2, &V3};
  forRegion(Region, [&](Pt P) {
    double In = 0.0;
    for (int D = 0; D != 3; ++D) {
      In += std::max(get(*V[D], P), 0.0) * getOff(Act, P, D, -1);
      In -= std::min(getOff(*V[D], P, D, 1), 0.0) * getOff(Act, P, D, 1);
    }
    Cp.at(P[0], P[1], P[2]) =
        (get(Mx, P) - get(Act, P)) * get(H, P) / (In + MpdataEps);
  });
}

/// S10: cn = (actual - mn) * h / (outflow + eps).
void kernelCn(const Array3D &Mn, const Array3D &Act, const Array3D &H,
              const Array3D &V1, const Array3D &V2, const Array3D &V3,
              Array3D &Cn, const Box3 &Region) {
  const Array3D *V[3] = {&V1, &V2, &V3};
  forRegion(Region, [&](Pt P) {
    double Center = get(Act, P);
    double Out = 0.0;
    for (int D = 0; D != 3; ++D) {
      Out += std::max(getOff(*V[D], P, D, 1), 0.0) * Center;
      Out -= std::min(get(*V[D], P), 0.0) * Center;
    }
    Cn.at(P[0], P[1], P[2]) =
        (Center - get(Mn, P)) * get(H, P) / (Out + MpdataEps);
  });
}

/// S11..S13: non-oscillatory limiting of a face velocity.
void kernelLimit(const Array3D &Cp, const Array3D &Cn, const Array3D &V,
                 Array3D &Vm, int Dim, const Box3 &Region) {
  forRegion(Region, [&](Pt P) {
    double CpHere = get(Cp, P);
    double CpLeft = getOff(Cp, P, Dim, -1);
    double CnHere = get(Cn, P);
    double CnLeft = getOff(Cn, P, Dim, -1);
    double Vel = get(V, P);
    double PosScale = std::min(1.0, std::min(CpHere, CnLeft));
    double NegScale = std::min(1.0, std::min(CpLeft, CnHere));
    Vm.at(P[0], P[1], P[2]) = PosScale * std::max(Vel, 0.0) +
                              NegScale * std::min(Vel, 0.0);
  });
}

} // namespace

KernelTable icores::buildMpdataKernels(KernelVariant Variant) {
  auto M = std::make_shared<const MpdataProgram>(buildMpdataProgram());
  KernelTable Table(M->Program.numStages());
  for (unsigned S = 0; S != M->Program.numStages(); ++S)
    Table.set(static_cast<StageId>(S),
              [M, S, Variant](FieldStore &Fields, const Box3 &Region) {
                runMpdataStage(*M, Fields, static_cast<StageId>(S), Region,
                               Variant);
              });
  return Table;
}

void icores::runMpdataStage(const MpdataProgram &M, FieldStore &Fields,
                            StageId Stage, const Box3 &Region,
                            KernelVariant Variant) {
  if (Region.empty())
    return;
  if (Variant == KernelVariant::Optimized) {
    runMpdataStageOptimized(M, Fields, Stage, Region);
    return;
  }
  if (Variant == KernelVariant::Simd) {
    runMpdataStageSimd(M, Fields, Stage, Region);
    return;
  }
  FieldStore &F = Fields;
  if (Stage == M.SFlux1) {
    kernelFlux(F.get(M.XIn), F.get(M.U1), F.get(M.F1), 0, Region);
  } else if (Stage == M.SFlux2) {
    kernelFlux(F.get(M.XIn), F.get(M.U2), F.get(M.F2), 1, Region);
  } else if (Stage == M.SFlux3) {
    kernelFlux(F.get(M.XIn), F.get(M.U3), F.get(M.F3), 2, Region);
  } else if (Stage == M.SUpwind) {
    kernelFluxDivergence(F.get(M.XIn), F.get(M.F1), F.get(M.F2), F.get(M.F3),
                         F.get(M.H), F.get(M.Actual), Region);
  } else if (Stage == M.SMinMax) {
    kernelMinMax(F.get(M.XIn), F.get(M.Actual), F.get(M.Mx), F.get(M.Mn),
                 Region);
  } else if (Stage == M.SVel1) {
    kernelPseudoVelocity(F.get(M.Actual), F.get(M.U1), F.get(M.U2), 1,
                         F.get(M.U3), 2, F.get(M.V1), 0, Region);
  } else if (Stage == M.SVel2) {
    kernelPseudoVelocity(F.get(M.Actual), F.get(M.U2), F.get(M.U1), 0,
                         F.get(M.U3), 2, F.get(M.V2), 1, Region);
  } else if (Stage == M.SVel3) {
    kernelPseudoVelocity(F.get(M.Actual), F.get(M.U3), F.get(M.U1), 0,
                         F.get(M.U2), 1, F.get(M.V3), 2, Region);
  } else if (Stage == M.SCp) {
    kernelCp(F.get(M.Mx), F.get(M.Actual), F.get(M.H), F.get(M.V1),
             F.get(M.V2), F.get(M.V3), F.get(M.Cp), Region);
  } else if (Stage == M.SCn) {
    kernelCn(F.get(M.Mn), F.get(M.Actual), F.get(M.H), F.get(M.V1),
             F.get(M.V2), F.get(M.V3), F.get(M.Cn), Region);
  } else if (Stage == M.SLim1) {
    kernelLimit(F.get(M.Cp), F.get(M.Cn), F.get(M.V1), F.get(M.V1m), 0,
                Region);
  } else if (Stage == M.SLim2) {
    kernelLimit(F.get(M.Cp), F.get(M.Cn), F.get(M.V2), F.get(M.V2m), 1,
                Region);
  } else if (Stage == M.SLim3) {
    kernelLimit(F.get(M.Cp), F.get(M.Cn), F.get(M.V3), F.get(M.V3m), 2,
                Region);
  } else if (Stage == M.SGFlux1) {
    kernelFlux(F.get(M.Actual), F.get(M.V1m), F.get(M.G1), 0, Region);
  } else if (Stage == M.SGFlux2) {
    kernelFlux(F.get(M.Actual), F.get(M.V2m), F.get(M.G2), 1, Region);
  } else if (Stage == M.SGFlux3) {
    kernelFlux(F.get(M.Actual), F.get(M.V3m), F.get(M.G3), 2, Region);
  } else if (Stage == M.SOut) {
    kernelFluxDivergence(F.get(M.Actual), F.get(M.G1), F.get(M.G2),
                         F.get(M.G3), F.get(M.H), F.get(M.XOut), Region);
  } else {
    ICORES_UNREACHABLE("unknown MPDATA stage id");
  }
}
