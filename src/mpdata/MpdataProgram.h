//===- mpdata/MpdataProgram.h - 17-stage MPDATA stencil program -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the StencilProgram describing one MPDATA time step as 17
/// heterogeneous stencil stages (the non-oscillatory variant used by the
/// paper's EULAG dynamic core). One step:
///
///   S1..S3   f1,f2,f3  donor-cell fluxes of xIn along i, j, k
///   S4       actual    first-order upwind update (psi*)
///   S5       mx,mn     local extrema of xIn and psi* (limiter bounds)
///   S6..S8   v1,v2,v3  antidiffusive pseudo-velocities from psi*
///   S9..S10  cp,cn     monotonicity factors (allowed in/outflow)
///   S11..S13 v1m..v3m  flux-limited pseudo-velocities
///   S14..S16 g1,g2,g3  corrected donor-cell fluxes of psi*
///   S17      xOut      final corrected update
///
/// The step reads five 3D input arrays (xIn, u1, u2, u3, h) and stores one
/// output array (xOut), matching the paper's Sect. 3.1. All intermediate
/// arrays are transient within the step.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_MPDATA_MPDATAPROGRAM_H
#define ICORES_MPDATA_MPDATAPROGRAM_H

#include "stencil/StencilIR.h"

namespace icores {

/// Small positive constant guarding MPDATA denominators.
inline constexpr double MpdataEps = 1e-15;

/// The MPDATA stencil program plus named handles to its arrays and stages.
struct MpdataProgram {
  StencilProgram Program;

  // Time-step inputs. Velocity components are nondimensional Courant
  // numbers located on cell faces: u1(i,j,k) lives on the face between
  // cells (i-1,j,k) and (i,j,k), and analogously for u2/u3. h is the
  // density/Jacobian factor G.
  ArrayId XIn = 0, U1 = 0, U2 = 0, U3 = 0, H = 0;

  // Intermediates in production order.
  ArrayId F1 = 0, F2 = 0, F3 = 0;
  ArrayId Actual = 0;
  ArrayId Mx = 0, Mn = 0;
  ArrayId V1 = 0, V2 = 0, V3 = 0;
  ArrayId Cp = 0, Cn = 0;
  ArrayId V1m = 0, V2m = 0, V3m = 0;
  ArrayId G1 = 0, G2 = 0, G3 = 0;

  // Time-step output.
  ArrayId XOut = 0;

  // Stage ids in execution order (SFlux1 == 0 ... SOut == 16).
  StageId SFlux1 = 0, SFlux2 = 0, SFlux3 = 0;
  StageId SUpwind = 0;
  StageId SMinMax = 0;
  StageId SVel1 = 0, SVel2 = 0, SVel3 = 0;
  StageId SCp = 0, SCn = 0;
  StageId SLim1 = 0, SLim2 = 0, SLim3 = 0;
  StageId SGFlux1 = 0, SGFlux2 = 0, SGFlux3 = 0;
  StageId SOut = 0;
};

/// Builds and validates the 17-stage program.
MpdataProgram buildMpdataProgram();

} // namespace icores

#endif // ICORES_MPDATA_MPDATAPROGRAM_H
