//===- mpdata/InitialConditions.cpp - Workload generators -----------------===//

#include "mpdata/InitialConditions.h"

#include "support/Error.h"
#include "support/Random.h"

#include <cmath>

using namespace icores;

namespace {

/// Distance from \p X to \p Center on a periodic axis of length \p Extent
/// (nearest image).
double periodicDelta(double X, double Center, int Extent) {
  double D = X - Center;
  double E = static_cast<double>(Extent);
  D -= E * std::round(D / E);
  return D;
}

} // namespace

double GaussianBlob::valueAt(double I, double J, double K,
                             const Domain &D) const {
  double DI = periodicDelta(I, CenterI, D.ni());
  double DJ = periodicDelta(J, CenterJ, D.nj());
  double DK = periodicDelta(K, CenterK, D.nk());
  double R2 = DI * DI + DJ * DJ + DK * DK;
  return Background + Amplitude * std::exp(-R2 / (2.0 * Sigma * Sigma));
}

GaussianBlob GaussianBlob::translated(double DI, double DJ, double DK) const {
  GaussianBlob B = *this;
  B.CenterI += DI;
  B.CenterJ += DJ;
  B.CenterK += DK;
  return B;
}

void icores::fillGaussian(Array3D &A, const Domain &D,
                          const GaussianBlob &Blob) {
  Box3 Core = D.coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        A.at(I, J, K) = Blob.valueAt(I, J, K, D);
}

void icores::fillRandomPositive(Array3D &A, const Domain &D, uint64_t Seed,
                                double Lo, double Hi) {
  ICORES_CHECK(Lo >= 0.0 && Hi > Lo, "random field bounds must be positive");
  SplitMix64 Rng(Seed);
  Box3 Core = D.coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        A.at(I, J, K) = Rng.nextInRange(Lo, Hi);
}

void icores::setConstantVelocity(Array3D &U1, Array3D &U2, Array3D &U3,
                                 const Domain &D, double C1, double C2,
                                 double C3) {
  (void)D;
  U1.fill(C1);
  U2.fill(C2);
  U3.fill(C3);
}

void icores::setRotationalVelocity(Array3D &U1, Array3D &U2, Array3D &U3,
                                   const Domain &D, double Omega,
                                   double CenterI, double CenterJ) {
  Box3 Core = D.coreBox();
  // u1 lives on faces (i-1/2, j, k): it depends on j only, so the discrete
  // divergence u1(i+1)-u1(i) vanishes; symmetrically for u2. The field is
  // therefore discretely divergence-free, which keeps a constant scalar
  // field exactly constant.
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K) {
        U1.at(I, J, K) = -Omega * (static_cast<double>(J) + 0.5 - CenterJ);
        U2.at(I, J, K) = Omega * (static_cast<double>(I) + 0.5 - CenterI);
      }
  U3.fill(0.0);
}

double icores::l2ErrorVsBlob(const Array3D &A, const Domain &D,
                             const GaussianBlob &Blob) {
  Box3 Core = D.coreBox();
  double Sum = 0.0;
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K) {
        double E = A.at(I, J, K) - Blob.valueAt(I, J, K, D);
        Sum += E * E;
      }
  return std::sqrt(Sum / static_cast<double>(Core.numPoints()));
}

double icores::linfErrorVsBlob(const Array3D &A, const Domain &D,
                               const GaussianBlob &Blob) {
  Box3 Core = D.coreBox();
  double Max = 0.0;
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        Max = std::max(Max,
                       std::fabs(A.at(I, J, K) - Blob.valueAt(I, J, K, D)));
  return Max;
}
