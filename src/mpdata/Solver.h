//===- mpdata/Solver.h - Reference MPDATA time-stepping ---------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ReferenceSolver advances MPDATA in time by evaluating the 17 stages
/// stage-by-stage over their exact global dependence-cone regions (the
/// "original" computational flow of the paper's Sect. 3.1, minus any
/// parallelism). It is the correctness oracle for every parallel strategy:
/// all executors must reproduce its fields bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_MPDATA_SOLVER_H
#define ICORES_MPDATA_SOLVER_H

#include "grid/Array3D.h"
#include "grid/Domain.h"
#include "stencil/FieldStore.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/HaloAnalysis.h"

namespace icores {

/// Configuration of a reference run.
struct SolverOptions {
  /// Stop after the first-order upwind pass (stages S1..S4); used to
  /// demonstrate the accuracy gain of the corrective iteration.
  bool FirstOrderOnly = false;
  /// Physical boundary treatment (EULAG production runs use open
  /// boundaries; periodic is the default for exact conservation tests).
  BoundaryMode Boundary = BoundaryMode::Periodic;
  /// Kernel implementation; both variants are bit-identical.
  KernelVariant Kernels = KernelVariant::Reference;
};

/// Serial stage-by-stage MPDATA solver with periodic boundaries.
class ReferenceSolver {
public:
  /// Creates a solver for an NI x NJ x NK grid. The halo depth is derived
  /// from the stencil program's dependence cone.
  ReferenceSolver(int NI, int NJ, int NK, SolverOptions Opts = {});

  const Domain &domain() const { return Dom; }
  const MpdataProgram &program() const { return M; }

  /// Mutable access to the state and coefficient arrays for initialization.
  /// Write core-region values; halos are refreshed internally.
  Array3D &stateIn() { return State; }
  Array3D &velocity(int Dim);
  Array3D &density() { return Dens; }

  const Array3D &state() const { return State; }

  /// Refreshes the halos of the (time-constant) velocity and density
  /// arrays. Call once after initializing them.
  void prepareCoefficients();

  /// Advances one time step.
  void step();

  /// Advances \p Steps time steps.
  void run(int Steps);

  /// Deterministic serial sum of h * psi over the core region (the
  /// conserved quantity under periodic boundaries).
  double conservedMass() const;

private:
  MpdataProgram M;
  Domain Dom;
  RegionRequirements Req;
  SolverOptions Opts;

  Array3D State;  ///< psi at the current time level (with halo).
  Array3D Next;   ///< psi at the next time level.
  Array3D U[3];   ///< Courant numbers on faces.
  Array3D Dens;   ///< Density factor h.
  FieldStore Intermediates;
};

/// Builds the MPDATA program and returns the halo depth its dependence
/// cone requires of the step inputs (identical in every dimension).
int mpdataHaloDepth();

} // namespace icores

#endif // ICORES_MPDATA_SOLVER_H
