//===- grid/Array3D.cpp - Dense 3D array over a Box3 ----------------------===//

#include "grid/Array3D.h"

#include "support/Error.h"

#include <cmath>

using namespace icores;

void Array3D::copyRegionFrom(const Array3D &Src, const Box3 &Region) {
  ICORES_CHECK(Space.containsBox(Region) &&
                   Src.indexSpace().containsBox(Region),
               "copyRegionFrom region not covered by both arrays");
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        at(I, J, K) = Src.at(I, J, K);
}

double Array3D::sumRegion(const Box3 &Region) const {
  ICORES_CHECK(Space.containsBox(Region), "sumRegion outside index space");
  double Sum = 0.0;
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        Sum += at(I, J, K);
  return Sum;
}

double Array3D::maxAbsDiff(const Array3D &Other, const Box3 &Region) const {
  ICORES_CHECK(Space.containsBox(Region) &&
                   Other.indexSpace().containsBox(Region),
               "maxAbsDiff region not covered by both arrays");
  double Max = 0.0;
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        Max = std::max(Max, std::fabs(at(I, J, K) - Other.at(I, J, K)));
  return Max;
}
