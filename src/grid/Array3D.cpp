//===- grid/Array3D.cpp - Dense 3D array over a Box3 ----------------------===//

#include "grid/Array3D.h"

#include "grid/Placement.h"
#include "support/Error.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

using namespace icores;

void Array3D::fillRegion(const Box3 &Region, double Value) {
  ICORES_CHECK(Space.containsBox(Region), "fillRegion outside index space");
  if (Region.empty())
    return;
  const size_t RunLength = static_cast<size_t>(Region.extent(2));
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      std::fill_n(pointerTo(I, J, Region.Lo[2]), RunLength, Value);
}

void Array3D::copyRegionFrom(const Array3D &Src, const Box3 &Region) {
  ICORES_CHECK(Space.containsBox(Region) &&
                   Src.indexSpace().containsBox(Region),
               "copyRegionFrom region not covered by both arrays");
  if (Region.empty())
    return;
  // k is unit-stride within a row in both arrays (padding only ever adds
  // tail elements), so each (i, j) row copies as one contiguous run.
  // memmove, not memcpy: a self-copy passes identical row pointers.
  const size_t RunBytes =
      static_cast<size_t>(Region.extent(2)) * sizeof(double);
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      std::memmove(pointerTo(I, J, Region.Lo[2]),
                   Src.pointerTo(I, J, Region.Lo[2]), RunBytes);
}

bool Array3D::adviseHugePages() {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (Data.empty())
    return false;
  // madvise wants a page-aligned span; the 64-byte-aligned allocation is
  // not page-aligned, so shrink to the whole pages inside it.
  const uintptr_t Page = static_cast<uintptr_t>(placementPageBytes());
  uintptr_t Begin = reinterpret_cast<uintptr_t>(Data.data());
  uintptr_t End = Begin + Data.size() * sizeof(double);
  Begin = (Begin + Page - 1) & ~(Page - 1);
  End &= ~(Page - 1);
  if (End <= Begin)
    return false;
  return ::madvise(reinterpret_cast<void *>(Begin),
                   static_cast<size_t>(End - Begin), MADV_HUGEPAGE) == 0;
#else
  return false;
#endif
}

double Array3D::sumRegion(const Box3 &Region) const {
  ICORES_CHECK(Space.containsBox(Region), "sumRegion outside index space");
  double Sum = 0.0;
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        Sum += at(I, J, K);
  return Sum;
}

double Array3D::maxAbsDiff(const Array3D &Other, const Box3 &Region) const {
  ICORES_CHECK(Space.containsBox(Region) &&
                   Other.indexSpace().containsBox(Region),
               "maxAbsDiff region not covered by both arrays");
  double Max = 0.0;
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        Max = std::max(Max, std::fabs(at(I, J, K) - Other.at(I, J, K)));
  return Max;
}
