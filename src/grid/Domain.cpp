//===- grid/Domain.cpp - Physical domain and halo handling ----------------===//

#include "grid/Domain.h"

#include "grid/Array3D.h"
#include "support/Error.h"

using namespace icores;

namespace {

/// Shared halo-filling walk parameterized over the source-index mapping.
template <typename MapFn>
void fillHaloWith(const Domain &Dom, Array3D &A, MapFn &&Map) {
  Box3 Alloc = Dom.allocBox();
  ICORES_CHECK(A.indexSpace().containsBox(Alloc),
               "array does not cover the domain's alloc box");
  int NI = Dom.ni(), NJ = Dom.nj(), NK = Dom.nk();
  for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I) {
    int SI = Map(I, NI);
    bool InteriorI = I >= 0 && I < NI;
    for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J) {
      int SJ = Map(J, NJ);
      bool InteriorJ = J >= 0 && J < NJ;
      for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K) {
        if (InteriorI && InteriorJ && K >= 0 && K < NK)
          continue; // Core cells keep their values.
        A.at(I, J, K) = A.at(SI, SJ, Map(K, NK));
      }
    }
  }
}

} // namespace

void Domain::fillHalo(Array3D &A) const {
  if (Boundary == BoundaryMode::Periodic)
    fillHaloPeriodic(A);
  else
    fillHaloZeroGradient(A);
}

void Domain::fillHaloPeriodic(Array3D &A) const {
  ICORES_CHECK(Halo <= NI && Halo <= NJ && Halo <= NK,
               "halo deeper than the domain; wrap would alias twice");
  fillHaloWith(*this, A,
               [](int Index, int Extent) { return wrapIndex(Index, Extent); });
}

void Domain::fillHaloZeroGradient(Array3D &A) const {
  fillHaloWith(*this, A, [](int Index, int Extent) {
    return clampIndex(Index, Extent);
  });
}
