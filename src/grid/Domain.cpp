//===- grid/Domain.cpp - Physical domain and halo handling ----------------===//

#include "grid/Domain.h"

#include "grid/Array3D.h"
#include "support/Error.h"

#include <cstring>

using namespace icores;

namespace {

/// Shared halo-filling walk parameterized over the source-index mapping.
///
/// Every read resolves to a core cell (the map sends any index into
/// [0, Extent)), so the k-interior segment of a halo (i, j) row is a
/// contiguous copy of the mapped core row — one memcpy per row. Only the
/// k-halo cells of each row need the element-wise mapped gather.
template <typename MapFn>
void fillHaloWith(const Domain &Dom, Array3D &A, MapFn &&Map) {
  Box3 Alloc = Dom.allocBox();
  ICORES_CHECK(A.indexSpace().containsBox(Alloc),
               "array does not cover the domain's alloc box");
  int NI = Dom.ni(), NJ = Dom.nj(), NK = Dom.nk();
  const size_t CoreRowBytes = static_cast<size_t>(NK) * sizeof(double);
  for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I) {
    int SI = Map(I, NI);
    for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J) {
      int SJ = Map(J, NJ);
      // A row is an (i, j) halo row exactly when the map moved it; its
      // whole k-interior mirrors the (distinct) mapped core row.
      if (SI != I || SJ != J)
        std::memcpy(A.pointerTo(I, J, 0), A.pointerTo(SI, SJ, 0),
                    CoreRowBytes);
      for (int K = Alloc.Lo[2]; K != 0; ++K)
        A.at(I, J, K) = A.at(SI, SJ, Map(K, NK));
      for (int K = NK; K != Alloc.Hi[2]; ++K)
        A.at(I, J, K) = A.at(SI, SJ, Map(K, NK));
    }
  }
}

} // namespace

void Domain::fillHalo(Array3D &A) const {
  if (Boundary == BoundaryMode::Periodic)
    fillHaloPeriodic(A);
  else
    fillHaloZeroGradient(A);
}

void Domain::fillHaloPeriodic(Array3D &A) const {
  ICORES_CHECK(Halo <= NI && Halo <= NJ && Halo <= NK,
               "halo deeper than the domain; wrap would alias twice");
  fillHaloWith(*this, A,
               [](int Index, int Extent) { return wrapIndex(Index, Extent); });
}

void Domain::fillHaloZeroGradient(Array3D &A) const {
  fillHaloWith(*this, A, [](int Index, int Extent) {
    return clampIndex(Index, Extent);
  });
}
