//===- grid/Box3.cpp - Half-open 3D index boxes ---------------------------===//

#include "grid/Box3.h"

#include "support/Format.h"

using namespace icores;

std::string Box3::str() const {
  return formatString("[%d,%d)x[%d,%d)x[%d,%d)", Lo[0], Hi[0], Lo[1], Hi[1],
                      Lo[2], Hi[2]);
}
