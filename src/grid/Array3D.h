//===- grid/Array3D.h - Dense 3D array over a Box3 --------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Array3D stores double-precision values over an arbitrary half-open Box3
/// index space, so halo cells at negative indices are addressed directly
/// with their logical (i, j, k) coordinates. Storage is k-fastest (row-major
/// in (i, j, k)), matching the layout assumed by the traffic model.
///
/// Storage is 64-byte aligned, and k-rows can optionally be padded to a
/// multiple of the vector width (reset() with PadK > 0) so that every
/// (i, j, ·) row starts on a cache-line boundary — the layout the Simd
/// kernel backend wants. Padding is a physical-storage concern only: the
/// logical sizes (numElements(), sizeInBytes()) never include pad
/// elements, so the traffic model and cache simulator keep charging
/// logical (unpadded) bytes. paddedBytes() exposes the physical footprint.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_GRID_ARRAY3D_H
#define ICORES_GRID_ARRAY3D_H

#include "grid/Box3.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace icores {

/// Minimal STL allocator handing out storage aligned to \p Alignment
/// bytes. All instances are interchangeable (stateless).
template <typename T, std::size_t Alignment> class AlignedAllocator {
public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) {}

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T *P, std::size_t) {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator &, const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &, const AlignedAllocator &) {
    return false;
  }
};

/// Dense double array addressed by logical (i, j, k) within a Box3.
class Array3D {
public:
  /// Alignment (bytes) of data(); with k-row padding every row start too.
  static constexpr int DataAlignment = 64;
  /// Pad value that rounds each k-row up to a whole cache line / AVX-512
  /// vector (8 doubles = 64 bytes).
  static constexpr int VectorPadK =
      DataAlignment / static_cast<int>(sizeof(double));

  Array3D() = default;

  /// Allocates storage covering \p IndexSpace, zero-initialized. With
  /// \p PadK > 0, each k-row is padded to a multiple of PadK elements.
  explicit Array3D(const Box3 &IndexSpace, int PadK = 0) {
    reset(IndexSpace, PadK);
  }

  /// Re-shapes to \p IndexSpace, zero-filling all elements. Reuses the
  /// existing allocation when the shape and padding are unchanged. With
  /// \p PadK > 0, the k-row stride is rounded up to a multiple of PadK so
  /// every (i, j, ·) row starts DataAlignment-aligned when PadK is
  /// VectorPadK.
  void reset(const Box3 &IndexSpace, int PadK = 0) {
    if (resetShape(IndexSpace, PadK))
      Data.assign(PhysicalElements, 0.0);
    else
      std::fill(Data.begin(), Data.end(), 0.0);
  }

  /// reset() without the zero-fill when shape and padding are unchanged:
  /// repeated per-block scratch resets keep their (already initialized)
  /// pages instead of re-touching every one. A shape change still
  /// reallocates and zero-fills.
  void resetNoClear(const Box3 &IndexSpace, int PadK = 0) {
    if (resetShape(IndexSpace, PadK))
      Data.assign(PhysicalElements, 0.0);
  }

  const Box3 &indexSpace() const { return Space; }
  bool allocated() const { return !Data.empty(); }

  /// Logical element count (pad elements excluded) — what the traffic
  /// model and cache simulator charge.
  int64_t numElements() const { return Space.numPoints(); }
  int64_t sizeInBytes() const {
    return numElements() * static_cast<int64_t>(sizeof(double));
  }
  /// Physical footprint including k-row pad elements.
  int64_t paddedBytes() const {
    return static_cast<int64_t>(Data.size()) *
           static_cast<int64_t>(sizeof(double));
  }
  /// The k-row pad multiple this array was reset with (0 = unpadded).
  int padK() const { return Pad; }

  double &at(int I, int J, int K) {
    return Data[static_cast<size_t>(linearIndex(I, J, K))];
  }
  double at(int I, int J, int K) const {
    return Data[static_cast<size_t>(linearIndex(I, J, K))];
  }
  double &operator()(int I, int J, int K) { return at(I, J, K); }
  double operator()(int I, int J, int K) const { return at(I, J, K); }

  double *data() { return Data.data(); }
  const double *data() const { return Data.data(); }

  /// Distance in elements between (i, j, k) and (i+1, j, k).
  int64_t strideI() const { return StrideI; }
  /// Distance in elements between (i, j, k) and (i, j+1, k). With k-row
  /// padding this exceeds extent(2); k stays unit-stride within a row.
  int64_t strideJ() const { return StrideJ; }

  /// Unchecked raw pointer to element (I, J, K); the coordinates must lie
  /// in the index space. For strided inner loops (see mpdata/Kernels).
  double *pointerTo(int I, int J, int K) {
    return Data.data() + linearIndex(I, J, K);
  }
  const double *pointerTo(int I, int J, int K) const {
    return Data.data() + linearIndex(I, J, K);
  }

  /// Sets every element (halo and padding included) to \p Value.
  void fill(double Value) { Data.assign(Data.size(), Value); }

  /// Sets every element of \p Region to \p Value via contiguous k-runs.
  void fillRegion(const Box3 &Region, double Value);

  /// Copies the values of \p Region from \p Src; the region must be inside
  /// both index spaces. Row-wise memmove over contiguous k-runs.
  void copyRegionFrom(const Array3D &Src, const Box3 &Region);

  /// Serial deterministic sum over \p Region (used by conservation tests;
  /// never parallelized so results are bit-stable).
  double sumRegion(const Box3 &Region) const;

  /// Returns the largest absolute difference against \p Other over
  /// \p Region; both arrays must cover the region.
  double maxAbsDiff(const Array3D &Other, const Box3 &Region) const;

private:
  /// Recomputes the shape/stride state for (IndexSpace, PadK). Returns
  /// true when the physical allocation size changed (caller must
  /// (re)allocate), false when the existing storage can be reused as-is.
  bool resetShape(const Box3 &IndexSpace, int PadK) {
    bool Same = allocated() && Space == IndexSpace && Pad == PadK;
    Space = IndexSpace;
    Pad = PadK;
    StrideJ = Space.extent(2);
    if (PadK > 0 && StrideJ > 0)
      StrideJ += (PadK - StrideJ % PadK) % PadK;
    StrideI = static_cast<int64_t>(Space.extent(1)) * StrideJ;
    PhysicalElements = Space.empty()
                           ? 0
                           : static_cast<size_t>(Space.extent(0)) *
                                 static_cast<size_t>(StrideI);
    return !Same;
  }

  int64_t linearIndex(int I, int J, int K) const {
    assert(Space.contains(I, J, K) && "Array3D access out of index space");
    return static_cast<int64_t>(I - Space.Lo[0]) * StrideI +
           static_cast<int64_t>(J - Space.Lo[1]) * StrideJ +
           (K - Space.Lo[2]);
  }

  Box3 Space;
  int Pad = 0;
  int64_t StrideI = 0;
  int64_t StrideJ = 0;
  size_t PhysicalElements = 0;
  std::vector<double, AlignedAllocator<double, DataAlignment>> Data;
};

} // namespace icores

#endif // ICORES_GRID_ARRAY3D_H
