//===- grid/Array3D.h - Dense 3D array over a Box3 --------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Array3D stores double-precision values over an arbitrary half-open Box3
/// index space, so halo cells at negative indices are addressed directly
/// with their logical (i, j, k) coordinates. Storage is k-fastest (row-major
/// in (i, j, k)), matching the layout assumed by the traffic model.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_GRID_ARRAY3D_H
#define ICORES_GRID_ARRAY3D_H

#include "grid/Box3.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace icores {

/// Dense double array addressed by logical (i, j, k) within a Box3.
class Array3D {
public:
  Array3D() = default;

  /// Allocates storage covering \p IndexSpace, zero-initialized.
  explicit Array3D(const Box3 &IndexSpace) { reset(IndexSpace); }

  /// Re-shapes to \p IndexSpace, zero-filling all elements.
  void reset(const Box3 &IndexSpace) {
    Space = IndexSpace;
    StrideJ = Space.extent(2);
    StrideI = static_cast<int64_t>(Space.extent(1)) * StrideJ;
    Data.assign(static_cast<size_t>(Space.numPoints()), 0.0);
  }

  const Box3 &indexSpace() const { return Space; }
  bool allocated() const { return !Data.empty(); }
  int64_t numElements() const { return static_cast<int64_t>(Data.size()); }
  int64_t sizeInBytes() const {
    return numElements() * static_cast<int64_t>(sizeof(double));
  }

  double &at(int I, int J, int K) {
    return Data[static_cast<size_t>(linearIndex(I, J, K))];
  }
  double at(int I, int J, int K) const {
    return Data[static_cast<size_t>(linearIndex(I, J, K))];
  }
  double &operator()(int I, int J, int K) { return at(I, J, K); }
  double operator()(int I, int J, int K) const { return at(I, J, K); }

  double *data() { return Data.data(); }
  const double *data() const { return Data.data(); }

  /// Distance in elements between (i, j, k) and (i+1, j, k).
  int64_t strideI() const { return StrideI; }
  /// Distance in elements between (i, j, k) and (i, j+1, k).
  int64_t strideJ() const { return StrideJ; }

  /// Unchecked raw pointer to element (I, J, K); the coordinates must lie
  /// in the index space. For strided inner loops (see mpdata/Kernels).
  double *pointerTo(int I, int J, int K) {
    return Data.data() + linearIndex(I, J, K);
  }
  const double *pointerTo(int I, int J, int K) const {
    return Data.data() + linearIndex(I, J, K);
  }

  /// Sets every element (halo included) to \p Value.
  void fill(double Value) { Data.assign(Data.size(), Value); }

  /// Copies the values of \p Region from \p Src; the region must be inside
  /// both index spaces.
  void copyRegionFrom(const Array3D &Src, const Box3 &Region);

  /// Serial deterministic sum over \p Region (used by conservation tests;
  /// never parallelized so results are bit-stable).
  double sumRegion(const Box3 &Region) const;

  /// Returns the largest absolute difference against \p Other over
  /// \p Region; both arrays must cover the region.
  double maxAbsDiff(const Array3D &Other, const Box3 &Region) const;

private:
  int64_t linearIndex(int I, int J, int K) const {
    assert(Space.contains(I, J, K) && "Array3D access out of index space");
    return static_cast<int64_t>(I - Space.Lo[0]) * StrideI +
           static_cast<int64_t>(J - Space.Lo[1]) * StrideJ +
           (K - Space.Lo[2]);
  }

  Box3 Space;
  int64_t StrideI = 0;
  int64_t StrideJ = 0;
  std::vector<double> Data;
};

} // namespace icores

#endif // ICORES_GRID_ARRAY3D_H
