//===- grid/Array3D.h - Dense 3D array over a Box3 --------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Array3D stores double-precision values over an arbitrary half-open Box3
/// index space, so halo cells at negative indices are addressed directly
/// with their logical (i, j, k) coordinates. Storage is k-fastest (row-major
/// in (i, j, k)), matching the layout assumed by the traffic model.
///
/// Storage is 64-byte aligned, and k-rows can optionally be padded to a
/// multiple of the vector width (reset() with PadK > 0) so that every
/// (i, j, ·) row starts on a cache-line boundary — the layout the Simd
/// kernel backend wants. Padding is a physical-storage concern only: the
/// logical sizes (numElements(), sizeInBytes()) never include pad
/// elements, so the traffic model and cache simulator keep charging
/// logical (unpadded) bytes. paddedBytes() exposes the physical footprint.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_GRID_ARRAY3D_H
#define ICORES_GRID_ARRAY3D_H

#include "grid/Box3.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace icores {

/// Minimal STL allocator handing out storage aligned to \p Alignment
/// bytes. All instances are interchangeable (stateless).
template <typename T, std::size_t Alignment> class AlignedAllocator {
public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) {}

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T *P, std::size_t) {
    ::operator delete(P, std::align_val_t(Alignment));
  }

  /// Default-initializing construct: vector::resize() placement-news each
  /// element without writing it, so growing a fresh vector does not touch
  /// its pages. That is the hook NUMA first-touch placement needs — the
  /// pages stay unmapped until a pinned worker writes them (see
  /// Array3D::resetUntouched). Value construction (assign/fill with an
  /// explicit value) still goes through the allocator_traits placement-new
  /// fallback and touches as before.
  template <typename U> void construct(U *P) { ::new (static_cast<void *>(P)) U; }

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator &, const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &, const AlignedAllocator &) {
    return false;
  }
};

/// Dense double array addressed by logical (i, j, k) within a Box3.
class Array3D {
public:
  /// Alignment (bytes) of data(); with k-row padding every row start too.
  static constexpr int DataAlignment = 64;
  /// Pad value that rounds each k-row up to a whole cache line / AVX-512
  /// vector (8 doubles = 64 bytes).
  static constexpr int VectorPadK =
      DataAlignment / static_cast<int>(sizeof(double));

  Array3D() = default;

  /// Allocates storage covering \p IndexSpace, zero-initialized. With
  /// \p PadK > 0, each k-row is padded to a multiple of PadK elements.
  explicit Array3D(const Box3 &IndexSpace, int PadK = 0) {
    reset(IndexSpace, PadK);
  }

  /// Re-shapes to \p IndexSpace, zero-filling all elements. Reuses the
  /// existing allocation when the shape and padding are unchanged. With
  /// \p PadK > 0, the k-row stride is rounded up to a multiple of PadK so
  /// every (i, j, ·) row starts DataAlignment-aligned when PadK is
  /// VectorPadK.
  void reset(const Box3 &IndexSpace, int PadK = 0) {
    if (resetShape(IndexSpace, PadK))
      Data.assign(PhysicalElements, 0.0);
    else
      std::fill(Data.begin(), Data.end(), 0.0);
  }

  /// reset() without the zero-fill when shape and padding are unchanged:
  /// repeated per-block scratch resets keep their (already initialized)
  /// pages instead of re-touching every one. A shape change still
  /// reallocates and zero-fills.
  void resetNoClear(const Box3 &IndexSpace, int PadK = 0) {
    if (resetShape(IndexSpace, PadK))
      Data.assign(PhysicalElements, 0.0);
  }

  /// Re-shapes to \p IndexSpace WITHOUT touching the new storage: the
  /// allocation is default-initialized, so no page of it is mapped until
  /// somebody writes it. This is the entry point for NUMA first-touch
  /// placement — the executor allocates every shared field untouched,
  /// then has each island's pinned team zero-fill its arena segment, so
  /// the kernel homes each page on the socket that will stream it. Any
  /// prior allocation (and its placement) is released first. The caller
  /// owns the obligation to zero every element before it is read;
  /// markPlaced() records that the fill happened under a placement
  /// policy.
  void resetUntouched(const Box3 &IndexSpace, int PadK = 0) {
    resetShape(IndexSpace, PadK);
    Data = decltype(Data)(); // Drop the old (already-placed) pages.
    Data.resize(PhysicalElements);
    Placed = false;
  }

  const Box3 &indexSpace() const { return Space; }
  bool allocated() const { return !Data.empty(); }

  /// Logical element count (pad elements excluded) — what the traffic
  /// model and cache simulator charge.
  int64_t numElements() const { return Space.numPoints(); }
  int64_t sizeInBytes() const {
    return numElements() * static_cast<int64_t>(sizeof(double));
  }
  /// Physical footprint including k-row pad elements.
  int64_t paddedBytes() const {
    return static_cast<int64_t>(Data.size()) *
           static_cast<int64_t>(sizeof(double));
  }
  /// The k-row pad multiple this array was reset with (0 = unpadded).
  int padK() const { return Pad; }

  double &at(int I, int J, int K) {
    return Data[static_cast<size_t>(linearIndex(I, J, K))];
  }
  double at(int I, int J, int K) const {
    return Data[static_cast<size_t>(linearIndex(I, J, K))];
  }
  double &operator()(int I, int J, int K) { return at(I, J, K); }
  double operator()(int I, int J, int K) const { return at(I, J, K); }

  double *data() { return Data.data(); }
  const double *data() const { return Data.data(); }

  /// Distance in elements between (i, j, k) and (i+1, j, k).
  int64_t strideI() const { return StrideI; }
  /// Distance in elements between (i, j, k) and (i, j+1, k). With k-row
  /// padding this exceeds extent(2); k stays unit-stride within a row.
  int64_t strideJ() const { return StrideJ; }

  /// Unchecked raw pointer to element (I, J, K); the coordinates must lie
  /// in the index space. For strided inner loops (see mpdata/Kernels).
  double *pointerTo(int I, int J, int K) {
    return Data.data() + linearIndex(I, J, K);
  }
  const double *pointerTo(int I, int J, int K) const {
    return Data.data() + linearIndex(I, J, K);
  }

  /// Sets every element (halo and padding included) to \p Value.
  ///
  /// Placement invariant: fill/fillRegion/copyRegionFrom run
  /// single-threaded, but they CANNOT undo NUMA first-touch placement —
  /// Linux homes a page at its first write and never migrates it on later
  /// writes, so once the init epoch has placed the pages, any thread may
  /// stream values into them. The only operation that loses placement is
  /// reallocation (reset to a different shape or padding), which is why
  /// those paths clear placed() and ProgramExecutor::run() asserts the
  /// flag still holds.
  void fill(double Value) { Data.assign(Data.size(), Value); }

  /// Sets every element of \p Region to \p Value via contiguous k-runs.
  /// Placement-safe: writes already-resident pages (see fill()).
  void fillRegion(const Box3 &Region, double Value);

  /// Copies the values of \p Region from \p Src; the region must be inside
  /// both index spaces. Row-wise memmove over contiguous k-runs.
  /// Placement-safe: writes already-resident pages (see fill()).
  void copyRegionFrom(const Array3D &Src, const Box3 &Region);

  /// Whether this array's pages were distributed by a placement policy
  /// (recorded by markPlaced() after the first-touch init epoch) and the
  /// allocation has not been dropped since. reset()/resetNoClear() with a
  /// changed shape, and resetUntouched(), clear the flag — those are the
  /// only paths that can lose page residency.
  bool placed() const { return Placed; }
  void markPlaced() { Placed = true; }

  /// Advises the kernel to back this array's pages with transparent huge
  /// pages (madvise(MADV_HUGEPAGE)); call between resetUntouched() and
  /// the first-touch fill so the pages are still unmapped. Returns false
  /// (never fails hard) when unsupported or the span is under a page.
  bool adviseHugePages();

  /// Serial deterministic sum over \p Region (used by conservation tests;
  /// never parallelized so results are bit-stable).
  double sumRegion(const Box3 &Region) const;

  /// Returns the largest absolute difference against \p Other over
  /// \p Region; both arrays must cover the region.
  double maxAbsDiff(const Array3D &Other, const Box3 &Region) const;

private:
  /// Recomputes the shape/stride state for (IndexSpace, PadK). Returns
  /// true when the physical allocation size changed (caller must
  /// (re)allocate), false when the existing storage can be reused as-is.
  bool resetShape(const Box3 &IndexSpace, int PadK) {
    bool Same = allocated() && Space == IndexSpace && Pad == PadK;
    if (!Same)
      Placed = false; // Reallocation drops page residency.
    Space = IndexSpace;
    Pad = PadK;
    StrideJ = Space.extent(2);
    if (PadK > 0 && StrideJ > 0)
      StrideJ += (PadK - StrideJ % PadK) % PadK;
    StrideI = static_cast<int64_t>(Space.extent(1)) * StrideJ;
    PhysicalElements = Space.empty()
                           ? 0
                           : static_cast<size_t>(Space.extent(0)) *
                                 static_cast<size_t>(StrideI);
    return !Same;
  }

  int64_t linearIndex(int I, int J, int K) const {
    assert(Space.contains(I, J, K) && "Array3D access out of index space");
    return static_cast<int64_t>(I - Space.Lo[0]) * StrideI +
           static_cast<int64_t>(J - Space.Lo[1]) * StrideJ +
           (K - Space.Lo[2]);
  }

  Box3 Space;
  int Pad = 0;
  int64_t StrideI = 0;
  int64_t StrideJ = 0;
  size_t PhysicalElements = 0;
  bool Placed = false;
  std::vector<double, AlignedAllocator<double, DataAlignment>> Data;
};

} // namespace icores

#endif // ICORES_GRID_ARRAY3D_H
