//===- grid/Box3.h - Half-open 3D index boxes -------------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Box3 is the workhorse of all region reasoning in this project: stage
/// output regions, dependence cones, island parts and (3+1)D blocks are all
/// half-open boxes [Lo, Hi) in (i, j, k) index space. Boxes may extend into
/// negative coordinates (halo regions around the physical domain).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_GRID_BOX3_H
#define ICORES_GRID_BOX3_H

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <string>

namespace icores {

/// A half-open axis-aligned box [Lo[d], Hi[d]) in 3D integer index space.
///
/// An empty box is any box with Hi[d] <= Lo[d] in some dimension; empty
/// boxes compare equal to each other for the purposes of containment and
/// contribute zero points.
struct Box3 {
  std::array<int, 3> Lo = {0, 0, 0};
  std::array<int, 3> Hi = {0, 0, 0};

  Box3() = default;
  Box3(int LoI, int LoJ, int LoK, int HiI, int HiJ, int HiK)
      : Lo{LoI, LoJ, LoK}, Hi{HiI, HiJ, HiK} {}

  /// Builds the box [0,NI) x [0,NJ) x [0,NK).
  static Box3 fromExtents(int NI, int NJ, int NK) {
    return Box3(0, 0, 0, NI, NJ, NK);
  }

  int extent(int Dim) const {
    assert(Dim >= 0 && Dim < 3 && "dimension out of range");
    return std::max(0, Hi[Dim] - Lo[Dim]);
  }

  bool empty() const {
    return extent(0) == 0 || extent(1) == 0 || extent(2) == 0;
  }

  /// Number of lattice points inside the box.
  int64_t numPoints() const {
    return static_cast<int64_t>(extent(0)) * extent(1) * extent(2);
  }

  bool contains(int I, int J, int K) const {
    return I >= Lo[0] && I < Hi[0] && J >= Lo[1] && J < Hi[1] && K >= Lo[2] &&
           K < Hi[2];
  }

  /// Returns true when \p Other lies entirely inside this box. An empty
  /// \p Other is contained in everything.
  bool containsBox(const Box3 &Other) const {
    if (Other.empty())
      return true;
    for (int D = 0; D != 3; ++D)
      if (Other.Lo[D] < Lo[D] || Other.Hi[D] > Hi[D])
        return false;
    return true;
  }

  /// Component-wise intersection; may be empty.
  Box3 intersect(const Box3 &Other) const {
    Box3 R;
    for (int D = 0; D != 3; ++D) {
      R.Lo[D] = std::max(Lo[D], Other.Lo[D]);
      R.Hi[D] = std::min(Hi[D], Other.Hi[D]);
    }
    return R;
  }

  /// Smallest box containing both operands (empty operands are ignored).
  Box3 unionWith(const Box3 &Other) const {
    if (empty())
      return Other;
    if (Other.empty())
      return *this;
    Box3 R;
    for (int D = 0; D != 3; ++D) {
      R.Lo[D] = std::min(Lo[D], Other.Lo[D]);
      R.Hi[D] = std::max(Hi[D], Other.Hi[D]);
    }
    return R;
  }

  /// Expands the box by \p Neg below and \p Pos above in dimension \p Dim.
  Box3 grown(int Dim, int Neg, int Pos) const {
    assert(Dim >= 0 && Dim < 3 && "dimension out of range");
    Box3 R = *this;
    R.Lo[Dim] -= Neg;
    R.Hi[Dim] += Pos;
    return R;
  }

  /// Expands by the same margin on every face.
  Box3 grownAll(int Margin) const {
    Box3 R = *this;
    for (int D = 0; D != 3; ++D) {
      R.Lo[D] -= Margin;
      R.Hi[D] += Margin;
    }
    return R;
  }

  /// Translates the box by the given offset.
  Box3 shifted(int DI, int DJ, int DK) const {
    Box3 R = *this;
    R.Lo[0] += DI;
    R.Hi[0] += DI;
    R.Lo[1] += DJ;
    R.Hi[1] += DJ;
    R.Lo[2] += DK;
    R.Hi[2] += DK;
    return R;
  }

  bool operator==(const Box3 &Other) const {
    return Lo == Other.Lo && Hi == Other.Hi;
  }
  bool operator!=(const Box3 &Other) const { return !(*this == Other); }

  /// Renders "[lo0,hi0)x[lo1,hi1)x[lo2,hi2)" for diagnostics.
  std::string str() const;
};

} // namespace icores

#endif // ICORES_GRID_BOX3_H
