//===- grid/Placement.h - NUMA page-placement policy ------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PlacementPolicy names where the pages of the shared field arrays should
/// live on a NUMA machine. The paper's premise is that islands win because
/// *both* the threads and their data stay on the home socket; the policy is
/// the data half of that contract:
///
///  - None:       no explicit placement. Pages land wherever the
///                allocating thread's serial first touch puts them (the
///                naive baseline of Table 1, historically "SerialInit").
///  - FirstTouch: each field's storage is partitioned along the island
///                partition and first-touched, page by page and in
///                parallel, by the owning team's pinned threads, so an
///                island streams its own part from local DRAM.
///  - Interleave: pages are spread round-robin across the active sockets
///                (the classic numactl --interleave contrast case): no
///                hot node, but every stream pays the average remote hop.
///
/// The policy is threaded through ExecutionPlan (planners and simulator),
/// ExecutorOptions (the real first-touch init epoch in ProgramExecutor)
/// and the CLI (--place=). Placement never changes results — every policy
/// must stay bit-exact with the reference solver — only page residency.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_GRID_PLACEMENT_H
#define ICORES_GRID_PLACEMENT_H

#include <cstdint>
#include <string>

namespace icores {

/// Where the pages of the shared arrays live (see file comment).
enum class PlacementPolicy {
  None,       ///< Serial first touch by the allocating thread.
  FirstTouch, ///< Per-island arenas touched by the owning pinned team.
  Interleave, ///< Pages round-robin across the active sockets.
};

/// Returns the canonical lowercase policy name ("none", "firsttouch",
/// "interleave") — the spelling used by --place=, ExecStats JSON and the
/// bench records.
const char *placementPolicyName(PlacementPolicy Policy);

/// Parses a policy name. Accepts the canonical names plus the legacy
/// spellings "serial" / "serialinit" (== None) and "first-touch". Returns
/// false (leaving \p Out untouched) for anything else.
bool parsePlacementPolicy(const std::string &Name, PlacementPolicy &Out);

/// The VM page granularity placement works at: the OS page size when it
/// can be queried, 4 KiB otherwise. Placement math (page counts, the
/// interleave round-robin) uses this so estimates match what the kernel
/// actually homes.
int64_t placementPageBytes();

} // namespace icores

#endif // ICORES_GRID_PLACEMENT_H
