//===- grid/Placement.cpp - NUMA page-placement policy --------------------===//

#include "grid/Placement.h"

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace icores;

const char *icores::placementPolicyName(PlacementPolicy Policy) {
  switch (Policy) {
  case PlacementPolicy::None:
    return "none";
  case PlacementPolicy::FirstTouch:
    return "firsttouch";
  case PlacementPolicy::Interleave:
    return "interleave";
  }
  return "none";
}

bool icores::parsePlacementPolicy(const std::string &Name,
                                  PlacementPolicy &Out) {
  if (Name == "none" || Name == "serial" || Name == "serialinit") {
    Out = PlacementPolicy::None;
    return true;
  }
  if (Name == "firsttouch" || Name == "first-touch") {
    Out = PlacementPolicy::FirstTouch;
    return true;
  }
  if (Name == "interleave") {
    Out = PlacementPolicy::Interleave;
    return true;
  }
  return false;
}

int64_t icores::placementPageBytes() {
#if defined(__linux__) || defined(__APPLE__)
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page > 0)
    return static_cast<int64_t>(Page);
#endif
  return 4096;
}
