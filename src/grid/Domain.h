//===- grid/Domain.h - Physical domain and halo handling --------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain describes the physical MPDATA grid (NI x NJ x NK cells) plus the
/// halo depth carried by every allocated array. Boundary conditions are
/// periodic: before each time step the halo shell of every *input* array is
/// filled with wrapped copies, which makes redundant recomputation of
/// intermediate stages near the physical boundary exact (see DESIGN.md §5).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_GRID_DOMAIN_H
#define ICORES_GRID_DOMAIN_H

#include "grid/Box3.h"

#include <cassert>

namespace icores {

class Array3D;

/// How the halo shell is populated at the physical boundary.
enum class BoundaryMode {
  Periodic,     ///< Wrap around (torus); conserves mass exactly.
  ZeroGradient, ///< Clamp to the nearest core cell (open boundary).
};

/// The global grid: core region [0,NI)x[0,NJ)x[0,NK) plus a halo shell.
class Domain {
public:
  Domain(int NI, int NJ, int NK, int HaloDepth,
         BoundaryMode Boundary = BoundaryMode::Periodic)
      : NI(NI), NJ(NJ), NK(NK), Halo(HaloDepth), Boundary(Boundary) {
    assert(NI > 0 && NJ > 0 && NK > 0 && "domain extents must be positive");
    assert(HaloDepth >= 0 && "halo depth must be non-negative");
  }

  int ni() const { return NI; }
  int nj() const { return NJ; }
  int nk() const { return NK; }
  int haloDepth() const { return Halo; }
  BoundaryMode boundaryMode() const { return Boundary; }

  /// The physical cells owned by the simulation.
  Box3 coreBox() const { return Box3::fromExtents(NI, NJ, NK); }

  /// The index space arrays are allocated over (core grown by the halo).
  Box3 allocBox() const { return coreBox().grownAll(Halo); }

  int64_t numCells() const { return coreBox().numPoints(); }

  /// Wraps \p Index into [0, Extent) (periodic boundary).
  static int wrapIndex(int Index, int Extent) {
    int Wrapped = Index % Extent;
    return Wrapped < 0 ? Wrapped + Extent : Wrapped;
  }

  /// Clamps \p Index into [0, Extent) (zero-gradient boundary).
  static int clampIndex(int Index, int Extent) {
    if (Index < 0)
      return 0;
    return Index >= Extent ? Extent - 1 : Index;
  }

  /// Fills every halo cell of \p A (cells of allocBox() outside coreBox())
  /// according to the domain's boundary mode. The array must cover
  /// allocBox().
  void fillHalo(Array3D &A) const;

  /// Periodic variant of fillHalo(), regardless of the domain's mode.
  void fillHaloPeriodic(Array3D &A) const;

  /// Zero-gradient variant of fillHalo(), regardless of the domain's mode.
  void fillHaloZeroGradient(Array3D &A) const;

private:
  int NI;
  int NJ;
  int NK;
  int Halo;
  BoundaryMode Boundary;
};

} // namespace icores

#endif // ICORES_GRID_DOMAIN_H
